//! Executor for method-JIT code.
//!
//! Runs compiled [`crate::minst::MFunction`]s over a contiguous register arena (one
//! window per frame), with scripted calls as Rust-level recursion. There
//! is no bytecode decode and no operand stack, but every operation remains
//! a generic boxed-value operation — the method-compiler execution profile
//! of the paper's Figure 10 comparison.

use tm_bytecode::Program;
use tm_interp::{install, Installed};
use tm_runtime::ops as rt_ops;
use tm_runtime::{Callee, IcStats, NativeId, PropIc, Realm, RuntimeError, Value};

use crate::compile::compile_program;
use crate::minst::{MInst, MProgram};

/// Maximum scripted call depth. Scripted calls recurse on the Rust stack;
/// debug-build frames are an order of magnitude larger, so the bound is
/// build-dependent to stay within default thread stacks.
#[cfg(debug_assertions)]
const MAX_CALL_DEPTH: usize = 200;
/// Release-build call depth bound.
#[cfg(not(debug_assertions))]
const MAX_CALL_DEPTH: usize = 1000;

/// The method-JIT virtual machine.
#[derive(Debug)]
pub struct MethodVm {
    prog: Program,
    mprog: MProgram,
    installed: Installed,
    regs: Vec<Value>,
    depth: usize,
    /// Dynamic instruction count (diagnostics / benchmarks).
    pub insts_executed: u64,
    /// Per-site property inline caches (indexed by bytecode site id).
    pub ics: Vec<PropIc>,
    /// Inline-cache hit/miss counters.
    pub ic_stats: IcStats,
    /// Remaining instruction budget.
    pub steps_remaining: u64,
}

impl MethodVm {
    /// Compiles and installs `prog` into `realm`.
    pub fn new(prog: Program, realm: &mut Realm) -> MethodVm {
        let installed = install(&prog, realm);
        let mprog = compile_program(&prog, &installed);
        let ics = vec![PropIc::default(); prog.prop_sites as usize];
        MethodVm {
            prog,
            mprog,
            installed,
            regs: Vec::with_capacity(256),
            depth: 0,
            insts_executed: 0,
            ics,
            ic_stats: IcStats::default(),
            steps_remaining: u64::MAX,
        }
    }

    /// The compiled program.
    pub fn mprog(&self) -> &MProgram {
        &self.mprog
    }

    /// The bytecode program.
    pub fn prog(&self) -> &Program {
        &self.prog
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Propagates guest [`RuntimeError`]s.
    pub fn run(&mut self, realm: &mut Realm) -> Result<Value, RuntimeError> {
        self.regs.clear();
        self.depth = 0;
        let main = self.mprog.main;
        self.call_scripted(main, &[Value::UNDEFINED], false, realm)
    }

    fn roots(&self) -> Vec<Value> {
        let mut roots = self.regs.clone();
        roots.extend(self.installed.roots());
        roots
    }

    fn maybe_gc(&mut self, realm: &mut Realm) {
        if realm.heap.should_collect() || realm.heap.gc_pending {
            let roots = self.roots();
            realm.collect_garbage(&roots);
        }
    }

    /// Calls scripted function `fidx` with `args[0]` as `this`.
    #[allow(clippy::too_many_lines)]
    fn call_scripted(
        &mut self,
        fidx: u32,
        args: &[Value],
        is_construct: bool,
        realm: &mut Realm,
    ) -> Result<Value, RuntimeError> {
        if self.depth >= MAX_CALL_DEPTH {
            return Err(RuntimeError::RangeError("maximum call depth exceeded".into()));
        }
        self.depth += 1;
        let result = self.frame_loop(fidx, args, is_construct, realm);
        self.depth -= 1;
        result
    }

    fn frame_loop(
        &mut self,
        fidx: u32,
        args: &[Value],
        is_construct: bool,
        realm: &mut Realm,
    ) -> Result<Value, RuntimeError> {
        let f = &self.mprog.functions[fidx as usize];
        let nregs = f.nregs as usize;
        let nparams = f.nparams as usize;
        let base = self.regs.len();
        // Locals: this, params (padded/truncated), vars.
        self.regs.push(args.first().copied().unwrap_or(Value::UNDEFINED));
        for i in 0..nparams {
            self.regs.push(args.get(i + 1).copied().unwrap_or(Value::UNDEFINED));
        }
        self.regs.resize(base + nregs, Value::UNDEFINED);

        let mut pc = 0usize;
        let ret = loop {
            let inst = self.mprog.functions[fidx as usize].code[pc].clone();
            pc += 1;
            self.insts_executed += 1;
            if self.steps_remaining == 0 {
                self.regs.truncate(base);
                return Err(RuntimeError::StepBudgetExhausted);
            }
            self.steps_remaining -= 1;
            let r = |i: u16| base + i as usize;
            match inst {
                MInst::Const { d, v } => self.regs[r(d)] = v,
                MInst::Mov { d, s } => self.regs[r(d)] = self.regs[r(s)],
                MInst::GetGlobal { d, slot } => self.regs[r(d)] = realm.global(slot),
                MInst::SetGlobal { slot, s } => realm.set_global(slot, self.regs[r(s)]),

                MInst::Add { d, a, b } => {
                    let (x, y) = (self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] = rt_ops::add_values(realm, x, y)
                        .map_err(|e| self.unwind(base, e))?;
                }
                MInst::Sub { d, a, b } => {
                    let (x, y) = (self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] =
                        rt_ops::sub_values(realm, x, y).map_err(|e| self.unwind(base, e))?;
                }
                MInst::Mul { d, a, b } => {
                    let (x, y) = (self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] =
                        rt_ops::mul_values(realm, x, y).map_err(|e| self.unwind(base, e))?;
                }
                MInst::Div { d, a, b } => {
                    let (x, y) = (self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] =
                        rt_ops::div_values(realm, x, y).map_err(|e| self.unwind(base, e))?;
                }
                MInst::Mod { d, a, b } => {
                    let (x, y) = (self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] =
                        rt_ops::mod_values(realm, x, y).map_err(|e| self.unwind(base, e))?;
                }
                MInst::Neg { d, a } => {
                    let x = self.regs[r(a)];
                    self.regs[r(d)] =
                        rt_ops::neg_value(realm, x).map_err(|e| self.unwind(base, e))?;
                }
                MInst::Pos { d, a } => {
                    let x = self.regs[r(a)];
                    self.regs[r(d)] = if x.is_number() {
                        x
                    } else {
                        let n = rt_ops::to_number(realm, x);
                        realm.heap.number(n)
                    };
                }
                MInst::Bit { d, a, b, kind } => {
                    let (x, y) = (self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] =
                        rt_ops::bit_op(realm, kind, x, y).map_err(|e| self.unwind(base, e))?;
                }
                MInst::BitNot { d, a } => {
                    let x = self.regs[r(a)];
                    self.regs[r(d)] =
                        rt_ops::bitnot_value(realm, x).map_err(|e| self.unwind(base, e))?;
                }
                MInst::Rel { d, a, b, kind } => {
                    let (x, y) = (self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] =
                        rt_ops::rel_op(realm, kind, x, y).map_err(|e| self.unwind(base, e))?;
                }
                MInst::Eq { d, a, b, ne } => {
                    let eq = rt_ops::loose_eq(realm, self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] = Value::new_bool(eq != ne);
                }
                MInst::StrictEq { d, a, b, ne } => {
                    let eq = rt_ops::strict_eq(realm, self.regs[r(a)], self.regs[r(b)]);
                    self.regs[r(d)] = Value::new_bool(eq != ne);
                }
                MInst::Not { d, a } => {
                    let t = rt_ops::truthy(realm, self.regs[r(a)]);
                    self.regs[r(d)] = Value::new_bool(!t);
                }
                MInst::Typeof { d, a } => {
                    let s = rt_ops::typeof_str(realm, self.regs[r(a)]);
                    self.regs[r(d)] = realm.typeof_atom(s);
                }

                MInst::NewArray { d, start, count } => {
                    let elems: Vec<Value> =
                        (0..count).map(|i| self.regs[r(start + i)]).collect();
                    let id = realm.new_array(0);
                    realm.heap.object_mut(id).elements = elems;
                    self.regs[r(d)] = Value::new_object(id);
                    self.maybe_gc(realm);
                }
                MInst::NewObject { d } => {
                    let id = realm.new_plain_object();
                    self.regs[r(d)] = Value::new_object(id);
                    self.maybe_gc(realm);
                }
                MInst::GetProp { d, o, sym, site } => {
                    let base_v = self.regs[r(o)];
                    let r_ = match self.ics.get_mut(site as usize) {
                        Some(ic) => realm.get_prop_with_ic(base_v, sym, ic, &mut self.ic_stats),
                        None => realm.get_prop(base_v, sym),
                    };
                    self.regs[r(d)] = r_.map_err(|e| self.unwind(base, e))?;
                }
                MInst::SetProp { o, sym, s, site } => {
                    let (base_v, v) = (self.regs[r(o)], self.regs[r(s)]);
                    match self.ics.get_mut(site as usize) {
                        Some(ic) => {
                            realm.set_prop_with_ic(base_v, sym, v, ic, &mut self.ic_stats)
                        }
                        None => realm.set_prop(base_v, sym, v),
                    }
                    .map_err(|e| self.unwind(base, e))?;
                }
                MInst::GetElem { d, o, i } => {
                    let (base_v, idx) = (self.regs[r(o)], self.regs[r(i)]);
                    self.regs[r(d)] =
                        realm.get_elem(base_v, idx).map_err(|e| self.unwind(base, e))?;
                }
                MInst::SetElem { o, i, s } => {
                    let (base_v, idx, v) =
                        (self.regs[r(o)], self.regs[r(i)], self.regs[r(s)]);
                    realm.set_elem(base_v, idx, v).map_err(|e| self.unwind(base, e))?;
                }

                MInst::Call { d, callee, argc } => {
                    // Layout: callee, this, args...
                    let cr = r(callee);
                    let args: Vec<Value> =
                        self.regs[cr + 1..cr + 2 + argc as usize].to_vec();
                    let res = self
                        .dispatch_call(self.regs[cr], &args, false, realm)
                        .map_err(|e| self.unwind(base, e))?;
                    self.regs[r(d)] = res;
                    self.maybe_gc(realm);
                }
                MInst::New { d, callee, argc } => {
                    let cr = r(callee);
                    let callee_v = self.regs[cr];
                    let proto_v = realm
                        .get_prop(callee_v, realm.sym_prototype)
                        .unwrap_or(Value::NULL);
                    let proto = proto_v.as_object().or(realm.object_proto);
                    let this_obj =
                        realm.heap.alloc_object(tm_runtime::Object::new_plain(proto));
                    let mut args = Vec::with_capacity(argc as usize + 1);
                    args.push(Value::new_object(this_obj));
                    args.extend_from_slice(&self.regs[cr + 1..cr + 1 + argc as usize]);
                    let res = self
                        .dispatch_call(callee_v, &args, true, realm)
                        .map_err(|e| self.unwind(base, e))?;
                    self.regs[r(d)] = res;
                    self.maybe_gc(realm);
                }
                MInst::Return { s } => break self.regs[r(s)],
                MInst::ReturnUndef => break Value::UNDEFINED,

                MInst::Jmp { target } => pc = target as usize,
                MInst::BrFalse { s, target } => {
                    if !rt_ops::truthy(realm, self.regs[r(s)]) {
                        pc = target as usize;
                    }
                }
                MInst::BrTrue { s, target } => {
                    if rt_ops::truthy(realm, self.regs[r(s)]) {
                        pc = target as usize;
                    }
                }
                MInst::LoopHead => {
                    if realm.interrupt {
                        self.regs.truncate(base);
                        return Err(RuntimeError::Interrupted);
                    }
                    self.maybe_gc(realm);
                }
            }
        };
        let ret = if is_construct && !ret.is_object() { self.regs[base] } else { ret };
        self.regs.truncate(base);
        Ok(ret)
    }

    fn unwind(&mut self, base: usize, e: RuntimeError) -> RuntimeError {
        self.regs.truncate(base);
        e
    }

    fn dispatch_call(
        &mut self,
        callee: Value,
        args: &[Value],
        is_construct: bool,
        realm: &mut Realm,
    ) -> Result<Value, RuntimeError> {
        let Some(obj) = callee.as_object() else {
            return Err(RuntimeError::NotCallable(format!("{callee:?}")));
        };
        let Some(kind) = realm.heap.object(obj).callee else {
            return Err(RuntimeError::NotCallable("object is not a function".into()));
        };
        match kind {
            Callee::Scripted(fidx) => self.call_scripted(fidx, args, is_construct, realm),
            Callee::Native(nid) => {
                let res = realm.call_native(NativeId(nid), args)?;
                Ok(if is_construct && !res.is_object() { args[0] } else { res })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_both(src: &str) -> (Option<f64>, Option<f64>) {
        let ast = tm_frontend::parse(src).unwrap();
        // Interpreter reference.
        let mut realm_i = Realm::new();
        let prog_i = tm_bytecode::compile(&ast, &mut realm_i).unwrap();
        let mut interp = tm_interp::Interp::new(prog_i, &mut realm_i);
        let tm_interp::RunExit::Finished(vi) = interp.run(&mut realm_i).unwrap() else {
            panic!()
        };
        // Method JIT.
        let mut realm_m = Realm::new();
        let prog_m = tm_bytecode::compile(&ast, &mut realm_m).unwrap();
        let mut mvm = MethodVm::new(prog_m, &mut realm_m);
        let vm = mvm.run(&mut realm_m).unwrap();
        (realm_i.heap.number_value(vi), realm_m.heap.number_value(vm))
    }

    #[test]
    fn property_sites_warm_their_inline_caches() {
        let src = "var o = {x: 0, y: 0};
             for (var i = 0; i < 500; i++) { o.x = o.x + 1; o.y = o.x; }
             o.y";
        let ast = tm_frontend::parse(src).unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut mvm = MethodVm::new(prog, &mut realm);
        let v = mvm.run(&mut realm).unwrap();
        assert_eq!(realm.heap.number_value(v), Some(500.0));
        // Every site misses at most a couple of times (fill + possible
        // epoch churn during object setup); the steady state is all hits.
        assert!(mvm.ic_stats.get_hits >= 900, "get hits: {:?}", mvm.ic_stats);
        assert!(mvm.ic_stats.set_hits >= 900, "set hits: {:?}", mvm.ic_stats);
        assert!(mvm.ic_stats.misses() <= 16, "misses: {:?}", mvm.ic_stats);
    }

    #[test]
    fn differential_basics() {
        for src in [
            "1 + 2 * 3",
            "var s = 0; for (var i = 0; i < 100; i++) s += i; s",
            "var s = 0; for (var i = 0; i < 20; i++) for (var j = 0; j < 20; j++) s += i ^ j; s",
            "function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(15)",
            "var o = {x: 3}; var s = 0; for (var i = 0; i < 50; i++) s += o.x; s",
            "var a = [1,2,3]; a[1] += 10; a[0] + a[1] + a[2]",
            "function P(x) { this.x = x; } var p = new P(42); p.x",
            "'abc'.charCodeAt(1)",
            "var s = ''; for (var i = 0; i < 10; i++) s += 'x'; s.length",
            "Math.floor(Math.sqrt(1000))",
            "var i = 0; while (true) { i++; if (i > 10) break; } i",
            "var v = true && 5 || 9; v",
            "typeof 1 === 'number' ? 1 : 0",
            "var s = 0; for (var i = 1; i < 50; i++) s += 1000 % i; s",
        ] {
            let (vi, vm) = run_both(src);
            assert_eq!(vi, vm, "mismatch on: {src}");
        }
    }

    #[test]
    fn interrupt_stops_loops() {
        let ast = tm_frontend::parse("while (true) {}").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut mvm = MethodVm::new(prog, &mut realm);
        realm.interrupt = true;
        assert_eq!(mvm.run(&mut realm), Err(RuntimeError::Interrupted));
    }

    #[test]
    fn deep_recursion_is_bounded() {
        let ast =
            tm_frontend::parse("function f(n) { return f(n + 1); } f(0)").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut mvm = MethodVm::new(prog, &mut realm);
        assert!(matches!(mvm.run(&mut realm), Err(RuntimeError::RangeError(_))));
    }
}
