//! The method JIT's instruction set.
//!
//! The method-at-a-time comparator (the paper's Figure 10 V8 baseline, a
//! 2009-era method compiler) compiles **whole functions** ahead of
//! execution into register code over **boxed** values: interpreter decode
//! and operand-stack traffic are gone, but every operation still performs
//! dynamic type dispatch — the profile the paper contrasts tracing
//! against. No type specialization, no guards, no deoptimization.

use tm_runtime::{Sym, Value};

/// A virtual register within a frame (locals first, then expression
/// temporaries assigned by abstract-stack scheduling).
pub type MReg = u16;

/// One method-JIT instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum MInst {
    /// Load a (pre-boxed, rooted) constant.
    Const { d: MReg, v: Value },
    /// Register move.
    Mov { d: MReg, s: MReg },
    /// Read a realm global.
    GetGlobal { d: MReg, slot: u32 },
    /// Write a realm global.
    SetGlobal { slot: u32, s: MReg },

    /// Generic `+` (add or concatenate).
    Add { d: MReg, a: MReg, b: MReg },
    /// Generic binary `-`.
    Sub { d: MReg, a: MReg, b: MReg },
    /// Generic `*`.
    Mul { d: MReg, a: MReg, b: MReg },
    /// Generic `/`.
    Div { d: MReg, a: MReg, b: MReg },
    /// Generic `%`.
    Mod { d: MReg, a: MReg, b: MReg },
    /// Generic unary `-`.
    Neg { d: MReg, a: MReg },
    /// Generic unary `+` (ToNumber).
    Pos { d: MReg, a: MReg },
    /// Generic bitwise op (kind selects which).
    Bit { d: MReg, a: MReg, b: MReg, kind: tm_runtime::ops::BitOp },
    /// Generic `~`.
    BitNot { d: MReg, a: MReg },
    /// Generic relational op.
    Rel { d: MReg, a: MReg, b: MReg, kind: tm_runtime::ops::RelOp },
    /// Loose equality (negated when `ne`).
    Eq { d: MReg, a: MReg, b: MReg, ne: bool },
    /// Strict equality (negated when `ne`).
    StrictEq { d: MReg, a: MReg, b: MReg, ne: bool },
    /// Logical not.
    Not { d: MReg, a: MReg },
    /// `typeof`.
    Typeof { d: MReg, a: MReg },

    /// Allocate an array from a contiguous register range.
    NewArray { d: MReg, start: MReg, count: u16 },
    /// Allocate an empty object.
    NewObject { d: MReg },
    /// Property read (`site` indexes the VM's inline-cache table).
    GetProp { d: MReg, o: MReg, sym: Sym, site: u16 },
    /// Property write (`site` indexes the VM's inline-cache table).
    SetProp { o: MReg, sym: Sym, s: MReg, site: u16 },
    /// Indexed read.
    GetElem { d: MReg, o: MReg, i: MReg },
    /// Indexed write.
    SetElem { o: MReg, i: MReg, s: MReg },

    /// Call: `callee` and `this` precede `argc` contiguous argument regs.
    Call { d: MReg, callee: MReg, argc: u8 },
    /// Construct: `callee` precedes `argc` contiguous argument regs.
    New { d: MReg, callee: MReg, argc: u8 },
    /// Return a register's value.
    Return { s: MReg },
    /// Return `undefined`.
    ReturnUndef,

    /// Unconditional jump (MJ pc).
    Jmp { target: u32 },
    /// Branch when falsy.
    BrFalse { s: MReg, target: u32 },
    /// Branch when truthy.
    BrTrue { s: MReg, target: u32 },
    /// Loop header: preemption + GC safe point.
    LoopHead,
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct MFunction {
    /// Instructions.
    pub code: Vec<MInst>,
    /// Total registers (locals + temporaries).
    pub nregs: u16,
    /// Declared parameter count.
    pub nparams: u16,
    /// Number of local slots (this + params + vars) — the prefix of the
    /// register file filled at call time.
    pub nlocals: u16,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct MProgram {
    /// Per-function code, parallel to the bytecode function table.
    pub functions: Vec<MFunction>,
    /// Entry function index.
    pub main: u32,
}
