//! Bytecode → method-JIT code translation.
//!
//! An abstract-stack pass assigns every operand-stack position a fixed
//! virtual register (`nlocals + depth`), eliminating push/pop traffic; the
//! translation is otherwise a 1:1 mapping of the stack bytecode onto
//! register instructions with pre-resolved jump targets. Values stay boxed
//! and operations generic — a method compiler without type feedback.

use std::collections::HashMap;

use tm_bytecode::{Function, Op, Program};
use tm_interp::Installed;
use tm_runtime::ops::{BitOp, RelOp};
use tm_runtime::Value;

use crate::minst::{MFunction, MInst, MProgram, MReg};

/// Compiles all functions of `prog`. `installed` supplies the rooted boxed
/// literals.
pub fn compile_program(prog: &Program, installed: &Installed) -> MProgram {
    let functions =
        prog.functions.iter().map(|f| compile_function(f, installed)).collect();
    MProgram { functions, main: prog.main.0 }
}

fn compile_function(f: &Function, installed: &Installed) -> MFunction {
    let nlocals = f.nlocals;
    let mut c = FnCompiler {
        code: Vec::with_capacity(f.code.len()),
        bc_to_mj: vec![0; f.code.len() + 1],
        depth_at: HashMap::new(),
        patches: Vec::new(),
        nlocals,
        max_depth: 0,
    };

    let mut depth: u16 = 0;
    let mut reachable = true;
    for (pc, &op) in f.code.iter().enumerate() {
        c.bc_to_mj[pc] = c.code.len() as u32;
        if let Some(&d) = c.depth_at.get(&(pc as u32)) {
            depth = d;
            reachable = true;
        }
        if !reachable {
            continue;
        }
        depth = c.translate(op, depth, installed);
        c.max_depth = c.max_depth.max(depth);
        if matches!(op, Op::Jump(_) | Op::Return | Op::ReturnUndef) {
            reachable = false;
        }
    }
    c.bc_to_mj[f.code.len()] = c.code.len() as u32;
    // Defensive trailing return (the bytecode compiler always emits one).
    if !matches!(c.code.last(), Some(MInst::Return { .. } | MInst::ReturnUndef)) {
        c.code.push(MInst::ReturnUndef);
    }
    // Patch jumps.
    for (mj_pc, bc_target) in c.patches {
        let target = c.bc_to_mj[bc_target as usize];
        match &mut c.code[mj_pc] {
            MInst::Jmp { target: t }
            | MInst::BrFalse { target: t, .. }
            | MInst::BrTrue { target: t, .. } => *t = target,
            other => unreachable!("patching non-branch {other:?}"),
        }
    }
    MFunction {
        code: c.code,
        nregs: nlocals + c.max_depth + 2,
        nparams: f.nparams,
        nlocals,
    }
}

struct FnCompiler {
    code: Vec<MInst>,
    bc_to_mj: Vec<u32>,
    depth_at: HashMap<u32, u16>,
    patches: Vec<(usize, u32)>,
    nlocals: u16,
    max_depth: u16,
}

impl FnCompiler {
    fn reg(&self, depth: u16) -> MReg {
        self.nlocals + depth
    }

    fn branch_to(&mut self, bc_target: u32, depth_at_target: u16) {
        self.patches.push((self.code.len() - 1, bc_target));
        let prev = self.depth_at.insert(bc_target, depth_at_target);
        debug_assert!(
            prev.is_none() || prev == Some(depth_at_target),
            "inconsistent stack depth at branch target"
        );
    }

    #[allow(clippy::too_many_lines)]
    fn translate(&mut self, op: Op, depth: u16, installed: &Installed) -> u16 {
        let d = depth;
        match op {
            Op::Int(i) => {
                let v = Value::new_int(i);
                self.code.push(MInst::Const { d: self.reg(d), v });
                d + 1
            }
            Op::Num(i) => {
                let v = installed.literals.numbers[i as usize];
                self.code.push(MInst::Const { d: self.reg(d), v });
                d + 1
            }
            Op::Str(i) => {
                let v = installed.literals.atoms[i as usize];
                self.code.push(MInst::Const { d: self.reg(d), v });
                d + 1
            }
            Op::True => {
                self.code.push(MInst::Const { d: self.reg(d), v: Value::TRUE });
                d + 1
            }
            Op::False => {
                self.code.push(MInst::Const { d: self.reg(d), v: Value::FALSE });
                d + 1
            }
            Op::Null => {
                self.code.push(MInst::Const { d: self.reg(d), v: Value::NULL });
                d + 1
            }
            Op::Undefined => {
                self.code.push(MInst::Const { d: self.reg(d), v: Value::UNDEFINED });
                d + 1
            }
            Op::GetLocal(s) => {
                self.code.push(MInst::Mov { d: self.reg(d), s });
                d + 1
            }
            Op::SetLocal(s) => {
                self.code.push(MInst::Mov { d: s, s: self.reg(d - 1) });
                d - 1
            }
            Op::GetGlobal(slot) => {
                self.code.push(MInst::GetGlobal { d: self.reg(d), slot });
                d + 1
            }
            Op::SetGlobal(slot) => {
                self.code.push(MInst::SetGlobal { slot, s: self.reg(d - 1) });
                d - 1
            }
            Op::Pop => d - 1,
            Op::Dup => {
                self.code.push(MInst::Mov { d: self.reg(d), s: self.reg(d - 1) });
                d + 1
            }
            Op::Swap => {
                let (a, b, t) = (self.reg(d - 1), self.reg(d - 2), self.reg(d));
                self.code.push(MInst::Mov { d: t, s: a });
                self.code.push(MInst::Mov { d: a, s: b });
                self.code.push(MInst::Mov { d: b, s: t });
                d
            }

            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                let (a, b) = (self.reg(d - 2), self.reg(d - 1));
                let dst = a;
                self.code.push(match op {
                    Op::Add => MInst::Add { d: dst, a, b },
                    Op::Sub => MInst::Sub { d: dst, a, b },
                    Op::Mul => MInst::Mul { d: dst, a, b },
                    Op::Div => MInst::Div { d: dst, a, b },
                    _ => MInst::Mod { d: dst, a, b },
                });
                d - 1
            }
            Op::Neg => {
                let a = self.reg(d - 1);
                self.code.push(MInst::Neg { d: a, a });
                d
            }
            Op::Pos => {
                let a = self.reg(d - 1);
                self.code.push(MInst::Pos { d: a, a });
                d
            }
            Op::BitAnd | Op::BitOr | Op::BitXor | Op::Shl | Op::Shr | Op::UShr => {
                let (a, b) = (self.reg(d - 2), self.reg(d - 1));
                let kind = match op {
                    Op::BitAnd => BitOp::And,
                    Op::BitOr => BitOp::Or,
                    Op::BitXor => BitOp::Xor,
                    Op::Shl => BitOp::Shl,
                    Op::Shr => BitOp::Shr,
                    _ => BitOp::UShr,
                };
                self.code.push(MInst::Bit { d: a, a, b, kind });
                d - 1
            }
            Op::BitNot => {
                let a = self.reg(d - 1);
                self.code.push(MInst::BitNot { d: a, a });
                d
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                let (a, b) = (self.reg(d - 2), self.reg(d - 1));
                let kind = match op {
                    Op::Lt => RelOp::Lt,
                    Op::Le => RelOp::Le,
                    Op::Gt => RelOp::Gt,
                    _ => RelOp::Ge,
                };
                self.code.push(MInst::Rel { d: a, a, b, kind });
                d - 1
            }
            Op::Eq | Op::Ne => {
                let (a, b) = (self.reg(d - 2), self.reg(d - 1));
                self.code.push(MInst::Eq { d: a, a, b, ne: matches!(op, Op::Ne) });
                d - 1
            }
            Op::StrictEq | Op::StrictNe => {
                let (a, b) = (self.reg(d - 2), self.reg(d - 1));
                self.code
                    .push(MInst::StrictEq { d: a, a, b, ne: matches!(op, Op::StrictNe) });
                d - 1
            }
            Op::Not => {
                let a = self.reg(d - 1);
                self.code.push(MInst::Not { d: a, a });
                d
            }
            Op::Typeof => {
                let a = self.reg(d - 1);
                self.code.push(MInst::Typeof { d: a, a });
                d
            }

            Op::NewArray(n) => {
                let start = self.reg(d - n);
                self.code.push(MInst::NewArray { d: start, start, count: n });
                d - n + 1
            }
            Op::NewObject => {
                self.code.push(MInst::NewObject { d: self.reg(d) });
                d + 1
            }
            Op::InitProp(sym, site) => {
                self.code.push(MInst::SetProp {
                    o: self.reg(d - 2),
                    sym,
                    s: self.reg(d - 1),
                    site,
                });
                d - 1
            }
            Op::GetProp(sym, site) => {
                let o = self.reg(d - 1);
                self.code.push(MInst::GetProp { d: o, o, sym, site });
                d
            }
            Op::SetProp(sym, site) => {
                let (o, s) = (self.reg(d - 2), self.reg(d - 1));
                self.code.push(MInst::SetProp { o, sym, s, site });
                self.code.push(MInst::Mov { d: o, s });
                d - 1
            }
            Op::GetElem => {
                let (o, i) = (self.reg(d - 2), self.reg(d - 1));
                self.code.push(MInst::GetElem { d: o, o, i });
                d - 1
            }
            Op::SetElem => {
                let (o, i, s) = (self.reg(d - 3), self.reg(d - 2), self.reg(d - 1));
                self.code.push(MInst::SetElem { o, i, s });
                self.code.push(MInst::Mov { d: o, s });
                d - 2
            }

            Op::Call(argc) => {
                let callee = self.reg(d - u16::from(argc) - 2);
                self.code.push(MInst::Call { d: callee, callee, argc });
                d - u16::from(argc) - 1
            }
            Op::New(argc) => {
                let callee = self.reg(d - u16::from(argc) - 1);
                self.code.push(MInst::New { d: callee, callee, argc });
                d - u16::from(argc)
            }
            Op::Return => {
                self.code.push(MInst::Return { s: self.reg(d - 1) });
                d - 1
            }
            Op::ReturnUndef => {
                self.code.push(MInst::ReturnUndef);
                d
            }

            Op::Jump(t) => {
                self.code.push(MInst::Jmp { target: 0 });
                self.branch_to(t, d);
                d
            }
            Op::JumpIfFalse(t) => {
                self.code.push(MInst::BrFalse { s: self.reg(d - 1), target: 0 });
                self.branch_to(t, d - 1);
                d - 1
            }
            Op::JumpIfTrue(t) => {
                self.code.push(MInst::BrTrue { s: self.reg(d - 1), target: 0 });
                self.branch_to(t, d - 1);
                d - 1
            }
            Op::AndJump(t) => {
                self.code.push(MInst::BrFalse { s: self.reg(d - 1), target: 0 });
                self.branch_to(t, d);
                d - 1
            }
            Op::OrJump(t) => {
                self.code.push(MInst::BrTrue { s: self.reg(d - 1), target: 0 });
                self.branch_to(t, d);
                d - 1
            }
            Op::LoopHeader(_) => {
                self.code.push(MInst::LoopHead);
                d
            }
            Op::Nop => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_runtime::Realm;

    fn compile_src(src: &str) -> (MProgram, tm_bytecode::Program) {
        let ast = tm_frontend::parse(src).unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let installed = tm_interp::install(&prog, &mut realm);
        let m = compile_program(&prog, &installed);
        (m, prog)
    }

    #[test]
    fn straight_line_register_assignment() {
        let (m, _) = compile_src("var x = 1 + 2 * 3;");
        let main = &m.functions[0];
        assert!(main.code.iter().any(|i| matches!(i, MInst::Mul { .. })));
        assert!(main.code.iter().any(|i| matches!(i, MInst::Add { .. })));
        assert!(matches!(main.code.last(), Some(MInst::Return { .. })));
    }

    #[test]
    fn loops_have_resolved_back_edges() {
        let (m, _) = compile_src("var i = 0; while (i < 10) i++;");
        let main = &m.functions[0];
        let heads: Vec<usize> = main
            .code
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, MInst::LoopHead))
            .map(|(p, _)| p)
            .collect();
        assert_eq!(heads.len(), 1);
        // Some jump targets the loop head.
        let jumps_back = main.code.iter().any(|i| match i {
            MInst::Jmp { target } | MInst::BrTrue { target, .. } => {
                *target as usize == heads[0]
            }
            _ => false,
        });
        assert!(jumps_back, "back edge must target the loop head:\n{:#?}", main.code);
    }

    #[test]
    fn branch_depths_are_consistent() {
        // The ternary creates a join with one value on the stack.
        let (m, _) = compile_src("var x = 1; var y = x ? x + 1 : x - 1; y");
        assert!(m.functions[0].nregs >= m.functions[0].nlocals + 2);
    }
}
