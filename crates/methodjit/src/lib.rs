//! # tm-methodjit
//!
//! A method-at-a-time compiler baseline — the stand-in for the paper's
//! Figure 10 comparison against Google V8 (2009-era: whole-method
//! compilation of generic, dynamically-dispatched code, no type feedback).
//!
//! Functions are compiled ahead of their first call into register code
//! over boxed values ([`compile`]), executed by a frame-based runner
//! ([`exec::MethodVm`]). Compared to the interpreter it eliminates decode
//! and operand-stack traffic; compared to the tracing JIT it keeps every
//! operation generic — exactly the trade-off the paper's evaluation
//! explores ("tracing wins on type-stable loops; the method compiler wins
//! where traces cannot be formed").

pub mod compile;
pub mod exec;
pub mod minst;

pub use compile::compile_program;
pub use exec::MethodVm;
pub use minst::{MFunction, MInst, MProgram};
