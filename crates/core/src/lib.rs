//! # tm-core
//!
//! The TraceMonkey core — the primary contribution of *Trace-based
//! Just-in-Time Type Specialization for Dynamic Languages* (PLDI 2009),
//! built on the substrate crates:
//!
//! * [`monitor`] — the mixed-mode state machine (Figure 2): hotness
//!   counting, trace-cache lookup, activation-record entry/exit, side-exit
//!   restoration with frame synthesis, branch extension, stability
//!   linking, and the nested-tree host (§4);
//! * [`recorder`] — bytecode → type-specialized SSA LIR with guards
//!   (§3.1, §6.3);
//! * [`tree`] — trace trees and the pc+typemap-indexed trace cache;
//! * [`oracle`] — integer-demotion advisory (§3.2);
//! * [`blacklist`] — abort backoff and permanent blacklisting with
//!   bytecode patching and nesting forgiveness (§3.3, §4.2);
//! * [`persist`] — the persistent trace cache: warm-starting the JIT
//!   across processes from a verified on-disk snapshot
//!   (`docs/PERSISTENCE.md`);
//! * [`vm`] — the public [`vm::Vm`] facade.
//!
//! ```
//! use tm_core::vm::{Engine, Vm};
//!
//! let mut vm = Vm::new(Engine::Tracing);
//! let v = vm.eval("var s = 0; for (var i = 0; i < 1000; i++) s += i; s")?;
//! assert_eq!(vm.realm.heap.number_value(v), Some(499500.0));
//! # Ok::<(), tm_core::vm::VmError>(())
//! ```

pub mod activation;
pub mod blacklist;
pub mod config;
pub mod events;
pub mod exit;
pub mod monitor;
pub mod mt;
pub mod oracle;
pub mod persist;
pub mod pool;
pub mod profiler;
pub mod recorder;
pub mod shared_cache;
pub mod tree;
pub mod vm;

pub use config::JitOptions;
pub use monitor::Monitor;
pub use mt::{MultiTenantVm, RealmJob, RealmReport};
pub use persist::{CacheError, CacheHandle};
pub use pool::CompilerPool;
pub use shared_cache::{SharedCacheStats, SharedCodeCache};
pub use vm::{Engine, Vm, VmError};

/// Compile-time Send audit: a multi-tenant VM runs one realm per thread,
/// so every piece of per-realm state — the realm itself, the interpreter,
/// the monitor with its compiled trees, and the whole [`Vm`] facade —
/// must be `Send`. Keeping the assertion here means any future field
/// that reintroduces `Rc`/raw-pointer state fails the build, not a test.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<tm_runtime::Realm>();
    assert_send::<tm_interp::Interp>();
    assert_send::<Monitor>();
    assert_send::<tree::TraceTree>();
    assert_send::<Vm>();
    assert_send::<profiler::ProfileStats>();
};
