//! Side-exit descriptors: everything needed to restore the interpreter
//! after a guard fails.
//!
//! "The exit branches to a side exit, a small off-trace piece of LIR that
//! returns a pointer to a structure that describes the reason for the exit
//! along with the interpreter PC at the exit point and any other data
//! needed to restore the interpreter's state structures" (§3.1). This
//! module is that structure.

use tm_bytecode::FuncId;
use tm_lir::{ArSlot, LirType};

use crate::activation::SlotKey;

/// Why this exit exists — drives the monitor's policy on taking it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// An ordinary guard: control flow or type deviated from the
    /// recording. Hot branch exits grow branch traces.
    Branch,
    /// The trace's loop edge (taken for preemption / pending GC only).
    LoopEdge,
    /// Type-unstable trace tail: always taken; the monitor looks for a
    /// sibling tree whose entry map matches (§3.2 / Figure 6).
    Unstable,
    /// The recorded path left the loop (break / loop condition false at a
    /// `while` bottom / return into the entry frame). Never extended.
    LeaveLoop,
    /// Exit after a native call that reentered the interpreter (§6.5) or
    /// a helper deep bail. Never extended.
    DeepBail,
    /// A nested tree call's exit (§4.1): taken when the inner tree left
    /// through an unexpected side exit. The inner tree's own exit handling
    /// already restored interpreter state, so the monitor performs **no
    /// write-back** for this exit; its `write_back` recipe is instead used
    /// by the nesting host to sync state *into* the interpreter before the
    /// inner call.
    NestedUnexpected,
}

/// One inline frame to synthesize when restoring interpreter state.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameDesc {
    /// The function running in this frame.
    pub func: FuncId,
    /// The pc at which this frame resumes: for the innermost frame, the
    /// exit pc; for outer frames, the instruction after their `Call`.
    pub resume_pc: u32,
    /// Operand-stack depth of this frame at the exit.
    pub stack_depth: u16,
    /// Whether the frame was entered via `new`.
    pub is_construct: bool,
    /// Raw boxed word of the callee function object (pushed beneath the
    /// frame during reconstruction; unused for the entry frame).
    pub callee_raw: u64,
}

/// Complete restoration recipe for one side exit.
#[derive(Debug, Clone, PartialEq)]
pub struct SideExitInfo {
    /// Exit policy class.
    pub kind: ExitKind,
    /// Frames at the exit point; `frames[0]` is the entry frame.
    pub frames: Vec<FrameDesc>,
    /// AR slots to box back into interpreter state: `(ar slot, where it
    /// goes, how to box it)`. Covers every slot the trace wrote up to this
    /// exit, including all operand-stack entries.
    pub write_back: Vec<(ArSlot, SlotKey, LirType)>,
    /// Hint for the oracle: slot keys whose integer speculation failed at
    /// this exit (set on overflow-guard exits).
    pub oracle_hint: Vec<SlotKey>,
    /// Exit-side type map used by branch-trace recording: observed types of
    /// every live slot at this exit (`write_back` plus untouched imports).
    pub typemap: Vec<(ArSlot, SlotKey, LirType)>,
    /// Set when this exit guards an integer-speculated arithmetic result:
    /// the bytecode site to demote in the oracle when the exit goes hot.
    pub arith_site: Option<(FuncId, u32)>,
}

impl SideExitInfo {
    /// The AR slots this exit reads (feeds LIR dead-store elimination).
    pub fn live_slots(&self) -> Vec<ArSlot> {
        self.write_back.iter().map(|&(s, _, _)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_slots_come_from_write_back() {
        let e = SideExitInfo {
            kind: ExitKind::Branch,
            frames: vec![FrameDesc {
                func: FuncId(0),
                resume_pc: 7,
                stack_depth: 1,
                is_construct: false,
                callee_raw: 0,
            }],
            write_back: vec![
                (0, SlotKey::Global(1), LirType::Int),
                (3, SlotKey::Stack { depth: 0, idx: 0 }, LirType::Double),
            ],
            oracle_hint: vec![],
            typemap: vec![],
            arith_site: None,
        };
        assert_eq!(e.live_slots(), vec![0, 3]);
    }
}
