//! The oracle (§3.2): "an advisory data structure" recording variables
//! that have been observed to hold non-integer number values, so future
//! recordings demote them to double immediately instead of re-recording a
//! type-unstable trace.

use std::collections::HashSet;

use tm_bytecode::FuncId;

use crate::activation::SlotKey;

/// A bytecode site (function, pc).
pub type Site = (FuncId, u32);

/// Key identifying a *variable* (not a stack temporary) across recordings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKey {
    /// A realm global slot.
    Global(u32),
    /// A local variable of a specific function.
    Local(FuncId, u16),
}

/// The integer-demotion oracle.
///
/// "When compiling loops, we consult the oracle before specializing values
/// to integers. Speculation towards integers is performed only if no
/// adverse information is known to the oracle."
#[derive(Debug, Default, Clone)]
pub struct Oracle {
    demoted: HashSet<VarKey>,
    /// Arithmetic bytecode sites whose integer speculation keeps failing
    /// (overflow guards taken repeatedly): future recordings use the
    /// double path there directly.
    demoted_sites: HashSet<Site>,
    enabled: bool,
}

impl Oracle {
    /// Creates an enabled oracle.
    pub fn new() -> Oracle {
        Oracle { demoted: HashSet::new(), demoted_sites: HashSet::new(), enabled: true }
    }

    /// Creates a disabled oracle (ablation: every number speculates int,
    /// so unstable loops keep re-recording).
    pub fn disabled() -> Oracle {
        Oracle { demoted: HashSet::new(), demoted_sites: HashSet::new(), enabled: false }
    }

    /// Records that `key` was observed holding a non-integer value.
    pub fn mark_double(&mut self, key: VarKey) {
        if self.enabled {
            self.demoted.insert(key);
        }
    }

    /// Whether `key` may be speculated as an integer.
    pub fn may_speculate_int(&self, key: VarKey) -> bool {
        !self.enabled || !self.demoted.contains(&key)
    }

    /// Records that integer speculation at arithmetic site `site` failed
    /// at runtime (its overflow guard went hot).
    pub fn mark_site(&mut self, site: Site) {
        if self.enabled {
            self.demoted_sites.insert(site);
        }
    }

    /// Whether the arithmetic at `site` may speculate integer results.
    pub fn may_speculate_int_site(&self, site: Site) -> bool {
        !self.enabled || !self.demoted_sites.contains(&site)
    }

    /// Snapshots the demotion state in a deterministic (sorted) order, for
    /// the persistent trace cache. Returns `(variables, sites)`.
    pub fn export(&self) -> (Vec<VarKey>, Vec<Site>) {
        fn var_rank(k: &VarKey) -> (u8, u32, u32) {
            match *k {
                VarKey::Global(g) => (0, g, 0),
                VarKey::Local(f, s) => (1, f.0, u32::from(s)),
            }
        }
        let mut vars: Vec<VarKey> = self.demoted.iter().copied().collect();
        vars.sort_by_key(var_rank);
        let mut sites: Vec<Site> = self.demoted_sites.iter().copied().collect();
        sites.sort_by_key(|&(f, pc)| (f.0, pc));
        (vars, sites)
    }

    /// Merges a previously [`Oracle::export`]ed snapshot back in (no-op
    /// when the oracle is disabled, like the mark methods).
    pub fn restore(&mut self, vars: &[VarKey], sites: &[Site]) {
        if !self.enabled {
            return;
        }
        self.demoted.extend(vars.iter().copied());
        self.demoted_sites.extend(sites.iter().copied());
    }

    /// Number of demoted variables (diagnostics).
    pub fn len(&self) -> usize {
        self.demoted.len()
    }

    /// Whether nothing has been demoted.
    pub fn is_empty(&self) -> bool {
        self.demoted.is_empty()
    }
}

/// Derives the oracle key for a slot key in the context of the function
/// whose frame the slot belongs to, if the slot names a variable.
pub fn var_key(slot: SlotKey, frame_funcs: &[FuncId]) -> Option<VarKey> {
    match slot {
        SlotKey::Global(g) => Some(VarKey::Global(g)),
        SlotKey::Local { depth, slot } => {
            frame_funcs.get(depth as usize).map(|&f| VarKey::Local(f, slot))
        }
        SlotKey::Stack { .. } | SlotKey::Reimport { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_blocks_int_speculation_after_mark() {
        let mut o = Oracle::new();
        let k = VarKey::Local(FuncId(1), 2);
        assert!(o.may_speculate_int(k));
        o.mark_double(k);
        assert!(!o.may_speculate_int(k));
        assert!(o.may_speculate_int(VarKey::Local(FuncId(1), 3)));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn disabled_oracle_never_blocks() {
        let mut o = Oracle::disabled();
        let k = VarKey::Global(0);
        o.mark_double(k);
        assert!(o.may_speculate_int(k));
        assert!(o.is_empty());
    }

    #[test]
    fn site_demotion_blocks_int_speculation_at_that_site_only() {
        let mut o = Oracle::new();
        let site = (FuncId(3), 17);
        assert!(o.may_speculate_int_site(site));
        o.mark_site(site);
        assert!(!o.may_speculate_int_site(site));
        // Neighbouring pcs and other functions are unaffected.
        assert!(o.may_speculate_int_site((FuncId(3), 18)));
        assert!(o.may_speculate_int_site((FuncId(4), 17)));
        // Site demotions are independent of variable demotions.
        assert!(o.is_empty());
        assert!(o.may_speculate_int(VarKey::Local(FuncId(3), 0)));
    }

    #[test]
    fn disabled_oracle_ignores_site_marks() {
        let mut o = Oracle::disabled();
        let site = (FuncId(0), 0);
        o.mark_site(site);
        assert!(o.may_speculate_int_site(site));
    }

    #[test]
    fn var_keys_from_slots() {
        let funcs = [FuncId(7), FuncId(9)];
        assert_eq!(var_key(SlotKey::Global(2), &funcs), Some(VarKey::Global(2)));
        assert_eq!(
            var_key(SlotKey::Local { depth: 1, slot: 3 }, &funcs),
            Some(VarKey::Local(FuncId(9), 3))
        );
        assert_eq!(var_key(SlotKey::Stack { depth: 0, idx: 0 }, &funcs), None);
        assert_eq!(var_key(SlotKey::Local { depth: 5, slot: 0 }, &funcs), None);
    }
}
