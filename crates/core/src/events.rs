//! Trace-activity event log, used by tests to assert the paper's §2
//! narrative (which traces are recorded/called when) and by diagnostics.

use tm_bytecode::FuncId;

/// One observable tracer action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Started recording a root (trunk) trace at a loop header.
    RecordStartRoot {
        /// Function of the loop.
        func: FuncId,
        /// Header pc.
        pc: u32,
    },
    /// Started recording a branch trace at a hot side exit.
    RecordStartBranch {
        /// Function of the tree anchor.
        func: FuncId,
        /// Anchor pc.
        pc: u32,
    },
    /// A trace was completed and compiled into tree `tree` as `fragment`.
    RecordFinish {
        /// Tree id.
        tree: u32,
        /// Fragment index within the tree.
        fragment: u32,
        /// LIR instructions recorded (after optimization).
        lir_len: u32,
    },
    /// Recording aborted.
    RecordAbort {
        /// Human-readable reason.
        reason: AbortReason,
    },
    /// Entered a compiled tree from the monitor.
    EnterTree {
        /// Tree id.
        tree: u32,
    },
    /// A nested tree was called from an outer trace (§4).
    NestedCall {
        /// Inner tree id.
        tree: u32,
    },
    /// A trace exited to the monitor.
    SideExit {
        /// Tree id.
        tree: u32,
        /// Fragment that exited.
        fragment: u32,
        /// Exit id.
        exit: u16,
    },
    /// A side exit was stitched to a new branch fragment.
    Stitch {
        /// Tree id.
        tree: u32,
        /// Parent fragment.
        from_fragment: u32,
        /// Exit patched.
        exit: u16,
        /// New branch fragment.
        to_fragment: u32,
    },
    /// A fragment start was blacklisted.
    Blacklist {
        /// Function.
        func: FuncId,
        /// pc.
        pc: u32,
    },
    /// Transferred between sibling trees of a type-unstable loop (Fig. 6).
    StableTransfer {
        /// Source tree.
        from_tree: u32,
        /// Destination tree.
        to_tree: u32,
    },
}

/// Why a recording was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Reached an inner loop with no compiled tree yet (§4.1 step 2).
    InnerTreeNotReady,
    /// The inner tree call failed (entry map mismatch / unexpected exit).
    InnerTreeCallFailed,
    /// Returned out of the trace-entry frame.
    LeftEntryFrame,
    /// Trace exceeded the length budget.
    TraceTooLong,
    /// Inlining exceeded the depth budget.
    TooDeep,
    /// A construct the recorder does not support (e.g. reentrant native).
    Unsupported,
    /// The callee at a recorded call is not a callable object; the
    /// interpreter raises a TypeError when it re-executes the call.
    /// Distinct from [`AbortReason::GuestError`], which means a guest
    /// error actually occurred *while* recording.
    NotCallable,
    /// A guest error occurred while recording.
    GuestError,
    /// The program finished while recording.
    ProgramEnd,
    /// The recorded trace failed static verification (`tm-verifier`); the
    /// malformed trace is discarded instead of compiled.
    VerifyFailed(tm_verifier::VerifyError),
    /// A background compile job failed (pipeline panic or a verification
    /// stage rejected the trace on a worker thread). Counted against the
    /// site's failure budget like any other abort.
    CompileFailed,
}

/// Bounded event log.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<TraceEvent>,
    /// Maximum retained events (0 = unbounded).
    pub cap: usize,
    /// Whether logging is enabled.
    pub enabled: bool,
}

impl EventLog {
    /// Creates an enabled, unbounded log.
    pub fn new() -> EventLog {
        EventLog { events: Vec::new(), cap: 0, enabled: true }
    }

    /// Appends an event.
    pub fn push(&mut self, e: TraceEvent) {
        if self.enabled && (self.cap == 0 || self.events.len() < self.cap) {
            self.events.push(e);
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_caps_and_disables() {
        let mut log = EventLog::new();
        log.cap = 1;
        log.push(TraceEvent::EnterTree { tree: 0 });
        log.push(TraceEvent::EnterTree { tree: 1 });
        assert_eq!(log.events().len(), 1);
        log.clear();
        log.enabled = false;
        log.push(TraceEvent::EnterTree { tree: 2 });
        assert!(log.events().is_empty());
    }
}
