//! The process-wide shared code cache: deduplicating compiled fragments
//! across realms.
//!
//! The abstract-interpretation account of tracing JITs (Dissegna,
//! Logozzo, Ranzato) shows a compiled trace is sound relative only to the
//! guards on its entry type map — nothing about the *realm* that recorded
//! it leaks into the fragment except the shape ids and slot indices its
//! guards test. Two realms whose realms were indistinguishable at the
//! program's install point (same [`realm_fingerprint`]) evolve their
//! shape tables identically while running the same bytecode, so a
//! fragment recorded by one is directly executable by the other: every
//! embedded shape id either already denotes the same property path or
//! will, deterministically, by the time an object can reach the guard.
//!
//! [`SharedCodeCache`] exploits that: realms publish compiled trace
//! trees keyed by `(bytecode-program checksum, realm fingerprint,
//! anchor, entry-type-map digest)` and probe the cache when a loop
//! becomes hot, installing a ready tree instead of paying to record and
//! compile. A realm whose shapes diverged (different fingerprint) misses
//! the key entirely — there is no false sharing, only cold recording.
//!
//! Entries are immutable snapshots behind `Arc`: eviction (LRU over a
//! machine-instruction budget) merely drops the cache's reference, so a
//! realm mid-execution of an evicted fragment keeps it alive until it
//! exits — an in-use fragment is never freed.
//!
//! Trees containing nested-call sites reference *other trees* by
//! realm-local id and are not shared (counted in
//! [`SharedCacheStats::skipped_nested`]); their inner trees, which carry
//! the hot loops, share fine.
//!
//! [`realm_fingerprint`]: crate::persist::realm_fingerprint

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use tm_bytecode::Program;
use tm_nanojit::Fragment;
use tm_runtime::Realm;
use tm_support::{sched, Fnv1a64};

use crate::activation::{ArLayout, SlotKey};
use crate::exit::SideExitInfo;
use crate::persist::{program_checksum, realm_fingerprint};
use crate::tree::{Anchor, EntrySlot, ExitState, TraceTree, TreeId, TreeStats};

/// Identifies "the same program in an indistinguishable realm": the two
/// halves of every shared-cache key that are fixed per `(program, realm)`
/// pair. Captured at the install point (post-compile, pre-run), exactly
/// like the persistent cache's [`crate::persist::CacheHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SharedKey {
    /// FNV-1a checksum of the compiled bytecode program.
    pub program_key: u64,
    /// Fingerprint of the realm at the install point.
    pub fingerprint: u64,
}

impl SharedKey {
    /// Captures the key for `prog` about to run in `realm`.
    pub fn capture(prog: &Program, realm: &Realm) -> SharedKey {
        SharedKey {
            program_key: program_checksum(prog),
            fingerprint: realm_fingerprint(realm),
        }
    }
}

/// An immutable published snapshot of a compiled trace tree — everything
/// a realm needs to install and execute it, and nothing realm-local (no
/// ids, no counters, no nested sites).
#[derive(Debug)]
pub struct SharedTree {
    /// Anchor the tree compiles.
    pub anchor: Anchor,
    /// Identity digest of this sibling (anchor + entry map at first
    /// publish); stable across republishes so branch extensions replace
    /// rather than duplicate, and so installing realms can deduplicate.
    pub digest: u64,
    /// Activation-record layout.
    pub layout: ArLayout,
    /// Entry type map.
    pub entry: Vec<EntrySlot>,
    /// Compiled fragments, shared by reference with every installing
    /// realm and with the publisher.
    pub fragments: Arc<Vec<Fragment>>,
    /// Side-exit descriptors per fragment.
    pub exits: Vec<Vec<SideExitInfo>>,
    /// Bytecodes covered per fragment.
    pub fragment_bytecodes: Vec<u32>,
    /// Which exits already carry a stitched branch fragment, per
    /// fragment and exit (the publisher's `ExitState::branch`).
    pub branch_links: Vec<Vec<Option<u32>>>,
    /// Per-fragment monitor-entry requirements.
    pub frag_entry_reqs: Vec<Vec<(tm_lir::ArSlot, SlotKey, tm_lir::LirType)>>,
    /// Loop-persistent writes.
    pub loop_writes: Vec<(tm_lir::ArSlot, SlotKey, tm_lir::LirType)>,
    /// Whether the trunk is type-unstable.
    pub unstable: bool,
    /// Total machine instructions across fragments (the LRU cost unit).
    pub insts: usize,
}

impl SharedTree {
    /// Materializes a realm-local [`TraceTree`] from this snapshot, with
    /// fresh execution statistics and exit counters but the publisher's
    /// branch links preserved (a stitched exit must never be re-recorded).
    pub fn instantiate(&self) -> TraceTree {
        let exit_states = self
            .branch_links
            .iter()
            .map(|frag| {
                frag.iter()
                    .map(|&branch| ExitState { counter: 0, failures: 0, branch })
                    .collect()
            })
            .collect();
        TraceTree {
            id: TreeId(0), // assigned by the installing cache
            anchor: self.anchor,
            layout: self.layout.clone(),
            entry: self.entry.clone(),
            fragments: Arc::clone(&self.fragments),
            exits: self.exits.clone(),
            fragment_bytecodes: self.fragment_bytecodes.clone(),
            exit_states,
            frag_entry_reqs: self.frag_entry_reqs.clone(),
            nested_sites: Vec::new(),
            loop_writes: self.loop_writes.clone(),
            lir: Vec::new(),
            unstable: self.unstable,
            disabled: false,
            stats: TreeStats::default(),
        }
    }
}

/// Digest of a tree's identity within a program: its anchor plus its
/// entry type map. Used as the sibling-level key component.
pub fn entry_digest(anchor: Anchor, entry: &[EntrySlot]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update_u64(u64::from(anchor.func.0));
    h.update_u64(u64::from(anchor.pc));
    h.update_u64(anchor.loop_id.0 as u64);
    h.update_u64(matches!(anchor.kind, crate::tree::AnchorKind::FuncEntry) as u64);
    for e in entry {
        h.update_u64(u64::from(e.ar));
        h.update_u64(slot_key_digest(e.key));
        h.update_u64(e.ty as u64);
    }
    h.finish()
}

fn slot_key_digest(key: SlotKey) -> u64 {
    match key {
        SlotKey::Global(g) => 0x1000_0000_0000 | u64::from(g),
        SlotKey::Local { depth, slot } => {
            0x2000_0000_0000 | (u64::from(depth) << 16) | u64::from(slot)
        }
        SlotKey::Stack { depth, idx } => {
            0x3000_0000_0000 | (u64::from(depth) << 16) | u64::from(idx)
        }
        SlotKey::Reimport { site, idx } => {
            0x4000_0000_0000 | (u64::from(site) << 16) | u64::from(idx)
        }
    }
}

/// Counters of the process-wide cache (see `docs/DIAGNOSTICS.md`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that returned at least one tree.
    pub hits: u64,
    /// Lookups that returned nothing.
    pub misses: u64,
    /// Trees published (first-time inserts).
    pub publishes: u64,
    /// Republishes that replaced an existing entry (branch extensions).
    pub replaced: u64,
    /// Entries evicted by the LRU budget.
    pub evictions: u64,
    /// Publishes skipped because the tree has nested-call sites.
    pub skipped_nested: u64,
    /// Current number of entries.
    pub entries: u64,
    /// Current total machine instructions held.
    pub insts: u64,
}

#[derive(Debug)]
struct Slot {
    tree: Arc<SharedTree>,
    /// LRU stamp: bumped on every hit and publish.
    stamp: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Sibling lists per `(shared key, anchor)`, values are digests into
    /// `entries`.
    by_anchor: HashMap<(SharedKey, Anchor), Vec<u64>>,
    entries: HashMap<(SharedKey, u64), Slot>,
    clock: u64,
    stats: SharedCacheStats,
}

/// The process-wide shared code cache. Cheap to clone a handle to
/// (`Arc<SharedCodeCache>`); all methods take `&self`.
#[derive(Debug)]
pub struct SharedCodeCache {
    inner: Mutex<Inner>,
    /// LRU budget in machine instructions (sum of fragment lengths).
    budget_insts: usize,
}

/// Default LRU budget: roomy enough that the whole SunSpider-style suite
/// fits, small enough that a runaway multi-program service turns over.
pub const DEFAULT_BUDGET_INSTS: usize = 1 << 20;

impl Default for SharedCodeCache {
    fn default() -> Self {
        SharedCodeCache::new(DEFAULT_BUDGET_INSTS)
    }
}

impl SharedCodeCache {
    /// Creates a cache with an LRU budget of `budget_insts` machine
    /// instructions.
    pub fn new(budget_insts: usize) -> SharedCodeCache {
        SharedCodeCache { inner: Mutex::new(Inner::default()), budget_insts }
    }

    /// All published siblings for `anchor` under `key`, most recently
    /// published first. Bumps the LRU stamp of every returned entry.
    pub fn lookup(&self, key: SharedKey, anchor: Anchor) -> Vec<Arc<SharedTree>> {
        sched::yield_point("shared.lookup");
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let digests = inner.by_anchor.get(&(key, anchor)).cloned().unwrap_or_default();
        let mut found = Vec::new();
        for d in digests {
            if let Some(slot) = inner.entries.get_mut(&(key, d)) {
                inner.clock += 1;
                slot.stamp = inner.clock;
                found.push(Arc::clone(&slot.tree));
            }
        }
        if found.is_empty() {
            inner.stats.misses += 1;
        } else {
            inner.stats.hits += 1;
        }
        found
    }

    /// Publishes a snapshot of `tree` under `key` with sibling identity
    /// `digest`, replacing any previous snapshot with the same identity
    /// (a branch extension republishes). Returns `false` (and counts)
    /// when the tree is not shareable (nested-call sites) — or when it is
    /// larger than the whole budget, in which case caching it would only
    /// thrash. May evict least-recently-used entries.
    pub fn publish(&self, key: SharedKey, digest: u64, tree: &TraceTree) -> bool {
        sched::yield_point("shared.publish");
        if !tree.nested_sites.is_empty() {
            self.inner.lock().unwrap().stats.skipped_nested += 1;
            return false;
        }
        let snapshot = SharedTree {
            anchor: tree.anchor,
            digest,
            layout: tree.layout.clone(),
            entry: tree.entry.clone(),
            fragments: Arc::clone(&tree.fragments),
            exits: tree.exits.clone(),
            fragment_bytecodes: tree.fragment_bytecodes.clone(),
            branch_links: tree
                .exit_states
                .iter()
                .map(|frag| frag.iter().map(|st| st.branch).collect())
                .collect(),
            frag_entry_reqs: tree.frag_entry_reqs.clone(),
            loop_writes: tree.loop_writes.clone(),
            unstable: tree.unstable,
            insts: tree.fragments.iter().map(Fragment::len).sum(),
        };
        if snapshot.insts > self.budget_insts {
            return false;
        }
        let evicted;
        {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let stamp = inner.clock;
            let anchor = snapshot.anchor;
            let insts = snapshot.insts;
            match inner.entries.insert(
                (key, digest),
                Slot { tree: Arc::new(snapshot), stamp },
            ) {
                Some(old) => {
                    inner.stats.replaced += 1;
                    inner.stats.insts -= old.tree.insts as u64;
                }
                None => {
                    inner.stats.publishes += 1;
                    inner.stats.entries += 1;
                    inner.by_anchor.entry((key, anchor)).or_default().push(digest);
                }
            }
            inner.stats.insts += insts as u64;
            evicted = inner.evict_over_budget(self.budget_insts);
        }
        if evicted > 0 {
            sched::yield_point("shared.evict");
        }
        true
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> SharedCacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Inner {
    /// Evicts least-recently-stamped entries until the instruction total
    /// fits the budget. Returns how many entries were evicted.
    fn evict_over_budget(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.stats.insts > budget as u64 && self.entries.len() > 1 {
            let Some((&victim_key, _)) =
                self.entries.iter().min_by_key(|(_, slot)| slot.stamp)
            else {
                break;
            };
            let slot = self.entries.remove(&victim_key).expect("victim exists");
            self.stats.insts -= slot.tree.insts as u64;
            self.stats.entries -= 1;
            self.stats.evictions += 1;
            evicted += 1;
            if let Some(list) = self.by_anchor.get_mut(&(victim_key.0, slot.tree.anchor)) {
                list.retain(|&d| d != victim_key.1);
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{Engine, Vm};
    use crate::JitOptions;

    /// Runs a hot loop and returns the VM (so its monitor's trees can be
    /// published by hand in these unit tests).
    fn traced(src: &str) -> Vm {
        let mut vm = Vm::new(Engine::Tracing);
        vm.eval(src).expect("runs");
        vm
    }

    fn first_tree(vm: &Vm) -> (SharedKey, u64, &TraceTree) {
        let m = vm.monitor().expect("traced");
        let t = m.cache.iter().next().expect("one tree");
        let key = SharedKey { program_key: 1, fingerprint: 2 };
        let digest = entry_digest(t.anchor, &t.entry);
        (key, digest, t)
    }

    #[test]
    fn publish_then_lookup_roundtrip() {
        let vm = traced("var s = 0; for (var i = 0; i < 100; i++) s += i; s");
        let (key, digest, tree) = first_tree(&vm);
        let cache = SharedCodeCache::default();
        assert!(cache.publish(key, digest, tree));
        let got = cache.lookup(key, tree.anchor);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].digest, digest);
        assert_eq!(got[0].fragments.len(), tree.fragments.len());
        // A different fingerprint misses.
        let other = SharedKey { program_key: 1, fingerprint: 3 };
        assert!(cache.lookup(other, tree.anchor).is_empty());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.publishes), (1, 1, 1));
    }

    #[test]
    fn republish_replaces_not_duplicates() {
        let vm = traced("var s = 0; for (var i = 0; i < 100; i++) s += i; s");
        let (key, digest, tree) = first_tree(&vm);
        let cache = SharedCodeCache::default();
        assert!(cache.publish(key, digest, tree));
        assert!(cache.publish(key, digest, tree));
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!((s.publishes, s.replaced), (1, 1));
    }

    #[test]
    fn lru_evicts_under_small_budget_but_in_use_trees_survive() {
        let vm = traced("var s = 0; for (var i = 0; i < 100; i++) s += i; s");
        let (key, digest, tree) = first_tree(&vm);
        let insts: usize = tree.fragments.iter().map(Fragment::len).sum();
        // Budget fits exactly two copies of this tree.
        let cache = SharedCodeCache::new(insts * 2);
        for i in 0..4u64 {
            assert!(cache.publish(key, digest.wrapping_add(i), tree));
        }
        let held = cache.lookup(key, tree.anchor);
        assert_eq!(cache.len(), 2, "LRU kept only the two newest");
        assert!(cache.stats().evictions >= 2);
        // The `Arc` returned by lookup keeps evicted-later entries alive:
        // publish more to evict everything we hold...
        for i in 10..20u64 {
            cache.publish(key, digest.wrapping_add(i), tree);
        }
        // ...and the fragments we obtained earlier are still executable
        // state (non-empty, readable) — eviction never frees in-use code.
        for t in &held {
            assert!(t.fragments.iter().map(Fragment::len).sum::<usize>() > 0);
        }
    }

    #[test]
    fn nested_trees_are_not_shared() {
        let mut opts = JitOptions::default();
        opts.log_events = true;
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        vm.eval(
            "var s = 0;
             for (var i = 0; i < 200; i++) {
                 for (var j = 0; j < 50; j++) s += 1;
             } s",
        )
        .unwrap();
        let m = vm.monitor().unwrap();
        let nested: Vec<_> =
            m.cache.iter().filter(|t| !t.nested_sites.is_empty()).collect();
        assert!(!nested.is_empty(), "outer tree has a nested site");
        let cache = SharedCodeCache::default();
        let key = SharedKey { program_key: 1, fingerprint: 2 };
        for t in nested {
            assert!(!cache.publish(key, entry_digest(t.anchor, &t.entry), t));
        }
        assert!(cache.stats().skipped_nested > 0);
    }

    #[test]
    fn oversized_tree_is_refused_without_thrashing() {
        let vm = traced("var s = 0; for (var i = 0; i < 100; i++) s += i; s");
        let (key, digest, tree) = first_tree(&vm);
        let cache = SharedCodeCache::new(1); // smaller than any real tree
        assert!(!cache.publish(key, digest, tree));
        assert_eq!(cache.len(), 0);
    }
}
