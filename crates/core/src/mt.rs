//! Multi-tenant VM: N isolated realms on independent threads, one
//! process-wide [`SharedCodeCache`], one background [`CompilerPool`].
//!
//! The paper's TraceMonkey embeds one realm in one thread (a browser
//! tab). A server embedding wants many tenants per process, which
//! changes three things:
//!
//! 1. **Isolation** — each tenant keeps its own [`Realm`] (heap, shapes,
//!    globals) and its own [`Monitor`] (hotness counters, blacklists,
//!    trees). Nothing mutable is shared between execution threads;
//!    `tm-core`'s compile-time `Send` audit (see `lib.rs`) keeps it that
//!    way.
//! 2. **Compilation off the hot path** — finished recordings go to the
//!    shared [`CompilerPool`]; the realm keeps interpreting its loop and
//!    installs the compiled tree at a later anchor hit.
//! 3. **Cross-realm code reuse** — compiled trees are published to the
//!    [`SharedCodeCache`], keyed by program checksum + realm fingerprint
//!    + anchor, so N tenants running the same workload pay for one
//!    compile (and realms with diverged shape tables never false-share).
//!
//! [`Realm`]: tm_runtime::Realm
//! [`Monitor`]: crate::monitor::Monitor

use std::path::PathBuf;
use std::sync::Arc;

use crate::config::JitOptions;
use crate::pool::{CompilerPool, PoolStats};
use crate::profiler::ProfileStats;
use crate::shared_cache::{SharedCacheStats, SharedCodeCache};
use crate::vm::{Engine, Vm};

/// One tenant's workload: a sequence of request sources evaluated in
/// order on a private realm.
#[derive(Debug, Clone)]
pub struct RealmJob {
    /// Program sources, run in order (each is one "request").
    pub sources: Vec<String>,
    /// Persistent trace-cache file for this realm (`None` = no
    /// persistence). Several realms may point at the same `.tmc`: each
    /// loads it independently, so one warm file warm-starts them all.
    pub cache_path: Option<PathBuf>,
    /// Interpreter step budget applied per request (bounds runaway
    /// tenants; `u64::MAX` = unlimited).
    pub step_budget: u64,
}

impl RealmJob {
    /// A job that evaluates `source` `n` times.
    pub fn repeat(source: &str, n: usize) -> RealmJob {
        RealmJob {
            sources: vec![source.to_owned(); n],
            cache_path: None,
            step_budget: u64::MAX,
        }
    }
}

/// What one realm thread produced.
#[derive(Debug)]
pub struct RealmReport {
    /// Per-request results: the displayed completion value, or the error
    /// text. Byte-comparable across realms and against a single-threaded
    /// run of the same job.
    pub results: Vec<Result<String, String>>,
    /// The realm's accumulated `print` output.
    pub output: String,
    /// Per-request profile statistics (one entry per source).
    pub stats: Vec<ProfileStats>,
}

/// A process hosting N concurrent realms over one shared code cache and
/// one background compiler pool.
///
/// ```
/// use tm_core::{MultiTenantVm, RealmJob};
///
/// let mt = MultiTenantVm::new(2);
/// let job = || RealmJob::repeat("var s = 0; for (var i = 0; i < 200; i++) s += i; s", 3);
/// let reports = mt.run(vec![job(), job()]);
/// assert_eq!(reports[0].results, reports[1].results);
/// ```
#[derive(Debug)]
pub struct MultiTenantVm {
    shared: Arc<SharedCodeCache>,
    pool: Arc<CompilerPool>,
    opts: JitOptions,
}

impl MultiTenantVm {
    /// A multi-tenant host with `workers` background compiler threads,
    /// default JIT options, and background compilation on.
    pub fn new(workers: usize) -> MultiTenantVm {
        let mut opts = JitOptions::default();
        opts.background_compile = true;
        MultiTenantVm::with_options(opts, workers)
    }

    /// Explicit options (e.g. `background_compile: false` to compile on
    /// the execution threads while still sharing compiled code).
    pub fn with_options(opts: JitOptions, workers: usize) -> MultiTenantVm {
        MultiTenantVm {
            shared: Arc::new(SharedCodeCache::default()),
            pool: Arc::new(CompilerPool::new(workers)),
            opts,
        }
    }

    /// The process-wide shared code cache.
    pub fn shared_cache(&self) -> &Arc<SharedCodeCache> {
        &self.shared
    }

    /// The background compiler pool.
    pub fn pool(&self) -> &Arc<CompilerPool> {
        &self.pool
    }

    /// Shared-cache counter snapshot.
    pub fn shared_stats(&self) -> SharedCacheStats {
        self.shared.stats()
    }

    /// Compiler-pool counter snapshot.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// A fresh tracing VM wired to this host's shared cache and pool
    /// (persistence disabled until the caller opts in).
    pub fn realm_vm(&self) -> Vm {
        let mut vm = Vm::with_options(Engine::Tracing, self.opts);
        vm.set_cache_path(None);
        vm.attach_shared_cache(Arc::clone(&self.shared));
        vm.attach_pool(Arc::clone(&self.pool));
        vm
    }

    /// Runs one job to completion on a fresh realm (the body of each
    /// realm thread; also usable inline for a single-threaded baseline).
    pub fn run_job(&self, job: &RealmJob) -> RealmReport {
        let mut vm = self.realm_vm();
        vm.set_cache_path(job.cache_path.clone());
        vm.step_budget = job.step_budget;
        let mut results = Vec::with_capacity(job.sources.len());
        let mut stats = Vec::with_capacity(job.sources.len());
        for src in &job.sources {
            let r = match vm.eval(src) {
                Ok(v) => Ok(tm_runtime::ops::to_display(&mut vm.realm, v)),
                Err(e) => Err(e.to_string()),
            };
            results.push(r);
            stats.push(vm.profile().cloned().unwrap_or_default());
        }
        RealmReport { results, output: vm.realm.output.clone(), stats }
    }

    /// Runs every job on its own OS thread; reports come back in job
    /// order. Panics in a realm thread propagate to the caller.
    pub fn run(&self, jobs: Vec<RealmJob>) -> Vec<RealmReport> {
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|job| s.spawn(move || self.run_job(job)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("realm thread panicked"))
                .collect()
        })
    }
}

/// Realm threads borrow the host across threads (`thread::scope`), so
/// the host must be `Sync` by construction.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<MultiTenantVm>();
};

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "var s = 0; for (var i = 0; i < 300; i++) s += i; s";

    #[test]
    fn two_realms_agree_and_share_code() {
        let mt = MultiTenantVm::new(1);
        let reports = mt.run(vec![RealmJob::repeat(HOT, 4), RealmJob::repeat(HOT, 4)]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].results, reports[1].results);
        assert_eq!(reports[0].results[0], Ok("44850".to_owned()));
        let s = mt.shared_stats();
        assert!(s.publishes >= 1, "some realm published a tree: {s:?}");
        // The first run's compiles may publish only at its blocking drain
        // (after every probe already happened), so assert reuse from a
        // realm that starts after the publishes are guaranteed visible.
        let late = mt.run(vec![RealmJob::repeat(HOT, 2)]);
        assert_eq!(late[0].results[0], Ok("44850".to_owned()));
        let s = mt.shared_stats();
        assert!(s.hits >= 1, "a late realm reuses the published tree: {s:?}");
    }

    #[test]
    fn background_compiles_install() {
        let mt = MultiTenantVm::new(2);
        let reports = mt.run(vec![RealmJob::repeat(HOT, 2)]);
        let total_submitted: u64 =
            reports[0].stats.iter().map(|s| s.compile_jobs_submitted).sum();
        let total_installed: u64 =
            reports[0].stats.iter().map(|s| s.compile_jobs_installed).sum();
        assert!(total_submitted >= 1, "hot loop goes through the pool");
        assert_eq!(total_submitted, total_installed, "every job lands (drained)");
        assert!(mt.pool_stats().executed >= 1);
    }

    #[test]
    fn sync_mode_still_shares() {
        let mut opts = JitOptions::default();
        opts.background_compile = false;
        let mt = MultiTenantVm::with_options(opts, 1);
        let reports = mt.run(vec![RealmJob::repeat(HOT, 2), RealmJob::repeat(HOT, 2)]);
        assert_eq!(reports[0].results, reports[1].results);
        assert_eq!(mt.pool_stats().executed, 0, "no background jobs in sync mode");
        assert!(mt.shared_stats().publishes >= 1);
    }
}
