//! Per-activity time and bytecode accounting — the instrumentation behind
//! the paper's Figure 11 (fraction of bytecodes interpreted vs. native)
//! and Figure 12 (time breakdown by VM activity; the state machine of
//! Figure 2).

use std::time::{Duration, Instant};

/// The VM activities of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Executing bytecodes in the interpreter.
    Interpret,
    /// Monitor bookkeeping: hotness counters, trace-cache lookup, entering
    /// and leaving traces (unboxing/boxing activation records).
    Monitor,
    /// Recording a trace (interpreting + emitting LIR).
    Record,
    /// Compiling a finished trace (backward filters + assembly).
    Compile,
    /// Executing compiled (native) traces.
    Native,
}

const N_ACTIVITIES: usize = 5;

fn idx(a: Activity) -> usize {
    match a {
        Activity::Interpret => 0,
        Activity::Monitor => 1,
        Activity::Record => 2,
        Activity::Compile => 3,
        Activity::Native => 4,
    }
}

/// Accumulated per-activity times and dynamic bytecode counts.
#[derive(Debug, Clone, Default)]
pub struct ProfileStats {
    /// Wall-clock per activity.
    pub time: [Duration; N_ACTIVITIES],
    /// Bytecodes executed by the pure interpreter.
    pub bytecodes_interp: u64,
    /// Bytecodes executed while recording.
    pub bytecodes_recorded: u64,
    /// Bytecode-equivalents executed natively (trace bytecode length ×
    /// iterations).
    pub bytecodes_native: u64,
    /// Machine instructions dispatched on trace (a fused superinstruction
    /// counts once).
    pub native_insts: u64,
    /// Of `native_insts`, how many were fused superinstructions.
    pub native_insts_fused: u64,
    /// Superinstructions emitted by the peephole pass (static, per
    /// compile).
    pub fused_superinsts: u64,
    /// Instructions the peephole pass removed from compiled code (static:
    /// raw minus fused length, summed over fragments).
    pub fuse_insts_removed: u64,
    /// Trace entries (monitor → native transitions).
    pub trace_enters: u64,
    /// Side exits taken back to the monitor.
    pub side_exits: u64,
    /// Traces recorded successfully.
    pub traces_completed: u64,
    /// Recordings aborted.
    pub traces_aborted: u64,
    /// Trees created.
    pub trees: u64,
    /// Fragments compiled (trunk + branches).
    pub fragments: u64,
    /// Loop edges resolved entirely by the dense per-loop monitor slot
    /// (tree entered, or inline hotness tick below threshold) — no hash
    /// lookup of any kind.
    pub monitor_slot_fast: u64,
    /// Loop edges that fell through to the recording/blacklist machinery
    /// (sibling scans, backoff tables, trace recording). Bounded by
    /// warm-up: a compiled or silenced loop never adds to this again.
    pub monitor_slot_slow: u64,
    /// Property inline-cache hit/miss counters, rolled up from the
    /// interpreter at the end of each monitored run.
    pub ic: tm_runtime::IcStats,
    /// Per-builtin trace counters: typed fast-call sites compiled into
    /// traces, keyed by helper name (see DIAGNOSTICS.md). Counts static
    /// call sites per compiled fragment, not dynamic executions.
    pub builtin_fast_records: std::collections::HashMap<String, u64>,
    /// Trace trees installed from the persistent cache (warm start).
    pub cache_loaded_trees: u64,
    /// Compiled fragments installed from the persistent cache; every one
    /// passed `tm-verifier` before installation.
    pub cache_loaded_fragments: u64,
    /// Cache lookups that found a valid entry for the running program.
    pub cache_hits: u64,
    /// Cache lookups that found no entry for the running program (file
    /// absent, or present without this program's key).
    pub cache_misses: u64,
    /// Cache entries rejected during revalidation (stale bytecode, shape
    /// conflict, corruption, verifier failure, ...) — each rejection
    /// degraded to a cold start.
    pub cache_revalidation_failures: u64,
    /// Shared-code-cache probes that found at least one tree published by
    /// some realm for the anchor.
    pub shared_cache_hits: u64,
    /// Shared-code-cache probes that found nothing for the anchor.
    pub shared_cache_misses: u64,
    /// Trees this realm installed from the shared code cache (compiled by
    /// another realm, or by this one in an earlier eval).
    pub shared_cache_installed_trees: u64,
    /// Trees this realm published to the shared code cache.
    pub shared_cache_publishes: u64,
    /// Compile jobs handed to the background compiler pool.
    pub compile_jobs_submitted: u64,
    /// Background compile jobs whose fragment was installed.
    pub compile_jobs_installed: u64,
    /// Background compile jobs that failed in the pipeline (counted
    /// against the site like a recording abort).
    pub compile_jobs_failed: u64,
    /// Fragments emitted as native x86-64 code (counted once per
    /// fragment when a tree's buffer is (re-)emitted).
    pub native_fragments: u64,
    /// Tree executions that fell back to the decoded executor because
    /// the tree contains an op the native emitter does not support (or
    /// the native tier is disabled/unsupported, with `native_backend`
    /// requested on).
    pub native_fallbacks: u64,
    /// Tree executions that ran through the native x86-64 backend (each
    /// contributes exactly one native exit).
    pub native_exits: u64,
    /// Native tree emissions performed on the background compiler pool
    /// and installed by this monitor (`background_compile` on). Counted
    /// at install time, when the ticket resolves.
    pub native_emissions_offthread: u64,
    /// Native tree emissions performed synchronously on the request
    /// thread (`background_compile` off, or no pool attached). With a
    /// pool active this stays zero — pinned by test.
    pub native_emissions_sync: u64,
}

impl ProfileStats {
    /// Time spent in `a`.
    pub fn time_in(&self, a: Activity) -> Duration {
        self.time[idx(a)]
    }

    /// Total measured time.
    pub fn total_time(&self) -> Duration {
        self.time.iter().sum()
    }

    /// Fraction of dynamic bytecodes executed natively (Figure 11).
    pub fn native_bytecode_fraction(&self) -> f64 {
        let total = self.bytecodes_interp + self.bytecodes_recorded + self.bytecodes_native;
        if total == 0 {
            0.0
        } else {
            self.bytecodes_native as f64 / total as f64
        }
    }
}

/// Stopwatch-style profiler. Only one activity runs at a time; nested
/// scopes are the caller's responsibility (switch, don't stack).
#[derive(Debug)]
pub struct Profiler {
    /// Aggregated results.
    pub stats: ProfileStats,
    current: Option<(Activity, Instant)>,
    /// When disabled, `enter`/`switch` are no-ops (no timer syscalls).
    pub enabled: bool,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new(true)
    }
}

impl Profiler {
    /// Creates a profiler.
    pub fn new(enabled: bool) -> Profiler {
        Profiler { stats: ProfileStats::default(), current: None, enabled }
    }

    /// Switches the active activity, accumulating the previous one.
    pub fn switch(&mut self, a: Activity) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if let Some((prev, started)) = self.current.take() {
            self.stats.time[idx(prev)] += now - started;
        }
        self.current = Some((a, now));
    }

    /// Stops timing (accumulating the active activity).
    pub fn stop(&mut self) {
        if let Some((prev, started)) = self.current.take() {
            self.stats.time[idx(prev)] += started.elapsed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_accumulates() {
        let mut p = Profiler::new(true);
        p.switch(Activity::Interpret);
        std::thread::sleep(Duration::from_millis(2));
        p.switch(Activity::Native);
        std::thread::sleep(Duration::from_millis(1));
        p.stop();
        assert!(p.stats.time_in(Activity::Interpret) >= Duration::from_millis(1));
        assert!(p.stats.time_in(Activity::Native) >= Duration::from_micros(500));
        assert!(p.stats.total_time() >= Duration::from_millis(2));
    }

    #[test]
    fn native_fraction() {
        let mut s = ProfileStats::default();
        assert_eq!(s.native_bytecode_fraction(), 0.0);
        s.bytecodes_interp = 25;
        s.bytecodes_native = 75;
        assert!((s.native_bytecode_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn disabled_profiler_is_noop() {
        let mut p = Profiler::new(false);
        p.switch(Activity::Interpret);
        p.stop();
        assert_eq!(p.stats.total_time(), Duration::ZERO);
    }
}
