//! The trace recorder (§3.1, §6.3).
//!
//! "The job of the trace recorder is to emit LIR with identical semantics
//! to the currently running interpreter bytecode trace." The monitor
//! single-steps the interpreter; before each bytecode executes, the
//! recorder inspects the operand stack, emits type-specialized LIR with
//! guards for every control-flow branch, type observation, shape-dependent
//! access, and integer overflow, and mirrors the interpreter's stack in a
//! shadow of SSA values.
//!
//! Guard exits snapshot the *pre-op* state: a failing guard resumes the
//! interpreter at the current bytecode with its operands still on the
//! (reconstructed) stack, so the interpreter simply re-executes the
//! instruction down the unrecorded path.

use std::collections::HashMap;

use tm_bytecode::{FuncId, LoopId, Op};
use tm_interp::Interp;
use tm_lir::{ArSlot, ExitId, Lir, LirBuffer, LirTrace, LirType};
use tm_runtime::trace_helpers::FastTy;
use tm_runtime::{ops as rt_ops, Callee, Helper, IcKind, NativeId, ObjectClass, PropIc, Realm, Sym, Value};

use crate::activation::{observed_type, ArLayout, SlotKey};
use crate::config::JitOptions;
use crate::events::AbortReason;
use crate::exit::{ExitKind, FrameDesc, SideExitInfo};
use crate::oracle::{var_key, Oracle, VarKey};
use crate::tree::{Anchor, AnchorKind, EntrySlot, NestedSite, TreeId};

/// Hard cap on shadow frames per recording: `SlotKey::Local` keys frame
/// depth in a `u8`, so side exits cannot describe deeper inlining no
/// matter what `max_inline_depth` is configured to.
const MAX_SHADOW_FRAMES: usize = 200;

/// A shadow value: the SSA id computing an interpreter value, plus its
/// unboxed type (never `Boxed` on the shadow stack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sv {
    /// SSA id in the LIR buffer.
    pub id: u32,
    /// Unboxed type.
    pub ty: LirType,
}

#[derive(Debug)]
struct ShadowFrame {
    func: FuncId,
    locals: Vec<Option<Sv>>,
    stack: Vec<Sv>,
    is_construct: bool,
    /// Resume pc of the frame *below* when this frame returns.
    caller_resume: u32,
    /// Raw boxed word of this frame's callee function object.
    callee_raw: u64,
}

/// What the monitor should do after a `record_op` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordAction {
    /// Step the interpreter; when `observe` is set, call
    /// [`Recorder::after_step`] afterwards.
    Step {
        /// Whether the recorder needs to see the result value.
        observe: bool,
    },
    /// The trace was completed (loop closed, left, or unstable-ended).
    Finished,
    /// Recording cannot continue.
    Abort(AbortReason),
    /// Reached an inner loop header (§4.1): the monitor must execute (or
    /// fail to find) a nested tree.
    InnerLoop {
        /// Inner loop's function.
        func: FuncId,
        /// Inner loop header pc.
        pc: u32,
        /// Inner loop's id (dense monitor-slot index).
        loop_id: LoopId,
    },
}

/// How the finished trace ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishKind {
    /// Type-stable loop: ends with `LoopBack`.
    StableLoop,
    /// Type-unstable: ends with an always-taken `End` exit (Figure 6).
    UnstableLoop,
    /// Left the loop (break / return / fell out): ends with `End`.
    Leave,
}

/// The completed product of a recording.
#[derive(Debug)]
pub struct RecordedTrace {
    /// The (forward-filtered) LIR; backward filters are the compiler's job.
    pub lir: LirTrace,
    /// Side-exit descriptors, indexed by exit id.
    pub exits: Vec<SideExitInfo>,
    /// Imports that must be added to the tree's entry type map.
    pub new_entry: Vec<EntrySlot>,
    /// The (possibly grown) AR layout.
    pub layout: ArLayout,
    /// Bytecodes covered by this trace.
    pub bytecodes: u32,
    /// How the trace ended.
    pub finish: FinishKind,
    /// Variables to demote in the oracle (set for unstable loops, §3.2).
    pub oracle_marks: Vec<VarKey>,
    /// Nested call sites created during this recording.
    pub nested_sites: Vec<NestedSite>,
    /// AR slots live at the loop edge.
    pub loop_live: Vec<ArSlot>,
    /// Loop-persistent writes (globals and entry-frame locals written by a
    /// looping trace): their values survive across iterations in the AR,
    /// so *every* exit of the tree must write them back.
    pub loop_writes: Vec<(ArSlot, SlotKey, LirType)>,
    /// Builtin helpers emitted as typed fast calls (per-builtin trace
    /// counters; see DIAGNOSTICS.md).
    pub fast_helpers: Vec<Helper>,
}

/// Projects a side-exit descriptor down to the shape the verifier checks
/// (the verifier is below `tm-core` in the crate graph and cannot name
/// `SlotKey`/`SideExitInfo` itself).
pub fn exit_view(e: &SideExitInfo) -> tm_verifier::ExitView {
    tm_verifier::ExitView {
        stack_depths: e.frames.iter().map(|f| f.stack_depth).collect(),
        stack_writes: e
            .write_back
            .iter()
            .filter_map(|&(_, key, _)| match key {
                SlotKey::Stack { depth, idx } => Some((depth, idx)),
                _ => None,
            })
            .collect(),
        write_back: e.write_back.iter().map(|&(s, _, t)| (s, t)).collect(),
        typemap: e.typemap.iter().map(|&(s, _, t)| (s, t)).collect(),
    }
}

impl RecordedTrace {
    /// Statically verifies the recorded LIR against its exit metadata
    /// (`tm-verifier`): SSA shape, operand types, exit-table consistency,
    /// and exit-map/stack balance.
    ///
    /// `base_entry` is the fragment's pre-existing entry state: empty for
    /// a root trace, the tree entry map merged with the parent exit's
    /// type map for a branch trace. The trace's own `new_entry` imports
    /// are appended automatically.
    ///
    /// # Errors
    ///
    /// Returns the first defect found.
    pub fn verify(
        &self,
        base_entry: &[(ArSlot, LirType)],
    ) -> Result<(), tm_verifier::VerifyError> {
        let mut entry: Vec<(ArSlot, LirType)> = base_entry.to_vec();
        for e in &self.new_entry {
            if !entry.iter().any(|&(s, _)| s == e.ar) {
                entry.push((e.ar, e.ty));
            }
        }
        let views: Vec<tm_verifier::ExitView> = self.exits.iter().map(exit_view).collect();
        tm_verifier::verify_trace(&self.lir, &views, &entry)
    }
}

#[derive(Debug, Clone, Copy)]
enum PendingNative {
    /// Generic boxed call: unbox the observed result.
    Generic,
    /// Typed fast call with result type; `CharCodeAt` additionally guards
    /// its NaN sentinel.
    Fast(Helper, FastTy),
}

/// The trace recorder. One instance per recording attempt.
pub struct Recorder {
    buf: LirBuffer,
    layout: ArLayout,
    /// Known entry types per key (branch: seeded from the parent exit's
    /// type map; root: filled as imports happen).
    entry_types: HashMap<SlotKey, LirType>,
    new_entry: Vec<EntrySlot>,
    frames: Vec<ShadowFrame>,
    globals: HashMap<u32, Sv>,
    /// Cumulative write set: AR slots whose interpreter locations are
    /// stale (includes the parent path for branch traces).
    written: HashMap<ArSlot, (SlotKey, LirType)>,
    /// Cumulative type knowledge (writes ∪ imports).
    known: HashMap<ArSlot, (SlotKey, LirType)>,
    exits: Vec<SideExitInfo>,
    anchor: Anchor,
    anchor_range: (u32, u32),
    /// The tree entry map the loop edge must re-establish (empty for root
    /// recordings, which build their own in `new_entry`).
    existing_entry: Vec<EntrySlot>,
    opts: JitOptions,
    ops_recorded: u32,
    nested_sites: Vec<NestedSite>,
    nested_site_base: u32,
    /// Inner anchors nested-called during this recording: hitting the same
    /// anchor twice means the inner tree exited mid-loop and we are
    /// circling it — the paper's "the interpreter PC is in the inner tree,
    /// so we cannot continue recording" case (§4.1).
    nested_anchors: Vec<(FuncId, u32)>,
    active_site: Option<usize>,
    pending_nested_exit: Option<ExitId>,
    pending_native: Option<(PendingNative, u32)>,
    oracle_marks: Vec<VarKey>,
    finish: Option<FinishKind>,
    loop_writes: Vec<(ArSlot, SlotKey, LirType)>,
    // Per-op guard-exit state (see module docs).
    cur_exit: Option<ExitId>,
    pre_pc: u32,
    pre_depths: Vec<u16>,
    /// Whether the oracle permits integer speculation at the current
    /// bytecode site.
    site_ok: bool,
    /// Set by the fast-native helper: the last native call used the typed
    /// fast path.
    last_was_fast: bool,
    /// Builtin helpers emitted as typed fast calls during this recording
    /// (diagnostics: the per-builtin trace counters in DIAGNOSTICS.md).
    fast_helpers: Vec<Helper>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("anchor", &self.anchor)
            .field("ops_recorded", &self.ops_recorded)
            .field("frames", &self.frames.len())
            .finish()
    }
}

impl Recorder {
    /// Starts recording a root (trunk) trace at `anchor`. The interpreter
    /// must be positioned just past the anchor's `LoopHeader`.
    pub fn new_root(
        anchor: Anchor,
        anchor_range: (u32, u32),
        interp: &Interp,
        opts: JitOptions,
    ) -> Recorder {
        let frame = interp.frame();
        let func = frame.func;
        let nlocals = interp.prog().function(func).nlocals;
        Recorder {
            buf: LirBuffer::new(opts.filters),
            layout: ArLayout::new(),
            entry_types: HashMap::new(),
            new_entry: Vec::new(),
            frames: vec![ShadowFrame {
                func,
                locals: vec![None; nlocals as usize],
                stack: Vec::new(),
                is_construct: false,
                caller_resume: 0,
                callee_raw: 0,
            }],
            globals: HashMap::new(),
            written: HashMap::new(),
            known: HashMap::new(),
            exits: Vec::new(),
            anchor,
            anchor_range,
            existing_entry: Vec::new(),
            opts,
            ops_recorded: 0,
            nested_sites: Vec::new(),
            nested_site_base: 0,
            active_site: None,
            pending_nested_exit: None,
            pending_native: None,
            oracle_marks: Vec::new(),
            finish: None,
            loop_writes: Vec::new(),
            cur_exit: None,
            pre_pc: 0,
            pre_depths: Vec::new(),
            site_ok: true,
            last_was_fast: false,
            fast_helpers: Vec::new(),
            nested_anchors: Vec::new(),
        }
    }

    /// Starts recording a branch trace from a side exit of an existing
    /// tree. The interpreter must be positioned at the exit's resume
    /// state.
    #[allow(clippy::too_many_arguments)]
    pub fn new_branch(
        anchor: Anchor,
        anchor_range: (u32, u32),
        layout: ArLayout,
        existing_entry: Vec<EntrySlot>,
        parent_exit: &SideExitInfo,
        nested_site_base: u32,
        interp: &Interp,
        opts: JitOptions,
    ) -> Recorder {
        let mut rec = Recorder {
            buf: LirBuffer::new(opts.filters),
            layout,
            entry_types: HashMap::new(),
            new_entry: Vec::new(),
            frames: Vec::new(),
            globals: HashMap::new(),
            written: HashMap::new(),
            known: HashMap::new(),
            exits: Vec::new(),
            anchor,
            anchor_range,
            existing_entry,
            opts,
            ops_recorded: 0,
            nested_sites: Vec::new(),
            nested_site_base,
            active_site: None,
            pending_nested_exit: None,
            pending_native: None,
            oracle_marks: Vec::new(),
            finish: None,
            loop_writes: Vec::new(),
            cur_exit: None,
            pre_pc: 0,
            pre_depths: Vec::new(),
            site_ok: true,
            last_was_fast: false,
            fast_helpers: Vec::new(),
            nested_anchors: Vec::new(),
        };
        // Every existing tree-entry slot is already populated at tree
        // entry: seed its type first so the branch never re-adds it as a
        // duplicate (conflicting) entry.
        for e in &rec.existing_entry {
            rec.entry_types.insert(e.key, e.ty);
        }
        // Everything the parent path established is importable at its
        // recorded type (overriding the entry type when the parent path
        // rewrote the slot); the parent's cumulative writes remain *our*
        // writes for later exits.
        for &(ar, key, ty) in &parent_exit.typemap {
            rec.entry_types.insert(key, ty);
            rec.known.insert(ar, (key, ty));
        }
        for &(ar, key, ty) in &parent_exit.write_back {
            rec.written.insert(ar, (key, ty));
        }
        // Rebuild shadow frames; locals import lazily (deeper-frame locals
        // not in the parent type map are still their initial undefined).
        // `snapshot_exit` derives a non-top frame's resume pc from the
        // frame *above* it (`frames[d].resume_pc == shadow[d+1].caller_resume`),
        // so the inversion reads the frame *below*: frame `d` was entered
        // from the call site its caller resumes at.
        for (d, fd) in parent_exit.frames.iter().enumerate() {
            let nlocals = interp.prog().function(fd.func).nlocals;
            rec.frames.push(ShadowFrame {
                func: fd.func,
                locals: vec![None; nlocals as usize],
                stack: Vec::new(),
                is_construct: fd.is_construct,
                caller_resume: if d == 0 { 0 } else { parent_exit.frames[d - 1].resume_pc },
                callee_raw: fd.callee_raw,
            });
        }
        // Guard exits before the first op need a valid pre-state.
        rec.pre_pc = parent_exit.frames.last().expect("frames").resume_pc;
        rec.pre_depths = parent_exit.frames.iter().map(|f| f.stack_depth).collect();
        // Materialize operand stacks eagerly (stack shadows are
        // structural); types come from the parent exit's type map (every
        // live stack entry was written by the parent path).
        for d in 0..rec.frames.len() {
            let depth = parent_exit.frames[d].stack_depth;
            for idx in 0..depth {
                let key = SlotKey::Stack { depth: d as u8, idx };
                debug_assert!(rec.entry_types.contains_key(&key), "stack entry not in parent map");
                let sv = rec.import_slot(key, None, interp);
                rec.frames[d].stack.push(sv);
            }
        }
        rec
    }

    /// The LIR recorded so far (diagnostics).
    pub fn lir(&self) -> &LirTrace {
        self.buf.trace()
    }

    /// Number of bytecodes recorded so far.
    pub fn ops_recorded(&self) -> u32 {
        self.ops_recorded
    }

    // ==== shadow-state primitives ====

    fn depth(&self) -> usize {
        self.frames.len() - 1
    }

    fn emit(&mut self, inst: Lir) -> u32 {
        self.buf.emit(inst)
    }

    /// The shared guard exit for the current bytecode (created lazily with
    /// the pre-op snapshot).
    /// Marks the current guard exit as an integer-speculation arithmetic
    /// guard: taken hot, the monitor demotes this bytecode site in the
    /// oracle so future recordings use the double path.
    fn arith_guard_exit(&mut self) -> ExitId {
        let e = self.guard_exit();
        let site = (self.frames[self.depth()].func, self.pre_pc);
        self.exits[e.0 as usize].arith_site = Some(site);
        e
    }

    fn site_may_speculate(&self) -> bool {
        self.site_ok
    }

    fn guard_exit(&mut self) -> ExitId {
        if let Some(e) = self.cur_exit {
            return e;
        }
        let e = self.snapshot_exit(ExitKind::Branch, self.pre_pc, Some(&self.pre_depths.clone()));
        self.cur_exit = Some(e);
        e
    }

    /// Snapshots state into a new side exit. `depths` overrides the
    /// per-frame operand-stack depths (pre-op state); `None` = current.
    fn snapshot_exit(
        &mut self,
        kind: ExitKind,
        resume_pc: u32,
        depths: Option<&[u16]>,
    ) -> ExitId {
        let exit = self.buf.alloc_exit();
        debug_assert_eq!(exit.0 as usize, self.exits.len());

        let cur_depths: Vec<u16> =
            self.frames.iter().map(|f| f.stack.len() as u16).collect();
        let depths = depths.unwrap_or(&cur_depths);

        let top = self.frames.len() - 1;
        let mut frames = Vec::with_capacity(self.frames.len());
        for (d, f) in self.frames.iter().enumerate() {
            frames.push(FrameDesc {
                func: f.func,
                resume_pc: if d == top {
                    resume_pc
                } else {
                    self.frames[d + 1].caller_resume
                },
                stack_depth: depths[d],
                is_construct: f.is_construct,
                callee_raw: f.callee_raw,
            });
        }

        let nframes = self.frames.len();
        let keep = |key: SlotKey| -> bool {
            match key {
                SlotKey::Global(_) => true,
                SlotKey::Local { depth, .. } => (depth as usize) < nframes,
                SlotKey::Stack { depth, idx } => {
                    (depth as usize) < nframes && idx < depths[depth as usize]
                }
                SlotKey::Reimport { .. } => false,
            }
        };
        let mut write_back: Vec<(ArSlot, SlotKey, LirType)> = self
            .written
            .iter()
            .filter(|&(_, &(key, _))| keep(key))
            .map(|(&ar, &(key, ty))| (ar, key, ty))
            .collect();
        write_back.sort_by_key(|&(ar, _, _)| ar);
        let mut typemap: Vec<(ArSlot, SlotKey, LirType)> = self
            .known
            .iter()
            .filter(|&(_, &(key, _))| keep(key))
            .map(|(&ar, &(key, ty))| (ar, key, ty))
            .collect();
        typemap.sort_by_key(|&(ar, _, _)| ar);

        self.exits.push(SideExitInfo {
            kind,
            frames,
            write_back,
            oracle_hint: Vec::new(),
            typemap,
            arith_site: None,
        });
        exit
    }

    /// Imports an interpreter location.
    ///
    /// Before any nested call, the import becomes part of the tree's entry
    /// type map. After a nested call ("re-import"), the type is taken from
    /// the freshly observed value and the slot is refreshed by the nesting
    /// host instead of at tree entry.
    fn import_slot(&mut self, key: SlotKey, observed: Option<Value>, interp: &Interp) -> Sv {
        let _ = interp;
        if let Some(site) = self.active_site {
            // Post-nested-call re-import: the canonical slot keeps its
            // pre-call type for exits, so the refreshed value gets a
            // private slot the host populates after the inner call.
            let v = observed.expect("re-import needs an observed value");
            let ty = observed_type(v);
            let idx = self.nested_sites[site].reimports.len() as u16;
            let site_id = self.nested_site_base + site as u32;
            let ar = self.layout.slot(SlotKey::Reimport { site: site_id, idx });
            self.nested_sites[site].reimports.push((ar, key, ty));
            let id = self.emit(Lir::Import { slot: ar, ty });
            return Sv { id, ty };
        }
        let ar = self.layout.slot(key);
        let ty = match self.entry_types.get(&key) {
            Some(&t) => t,
            None => {
                let v = observed.expect("fresh import needs an observed value");
                let ty = observed_type(v);
                self.entry_types.insert(key, ty);
                self.new_entry.push(EntrySlot { ar, key, ty });
                ty
            }
        };
        let id = self.emit(Lir::Import { slot: ar, ty });
        self.known.insert(ar, (key, ty));
        Sv { id, ty }
    }

    /// Marks an AR slot written, emitting the store.
    fn write_ar(&mut self, key: SlotKey, sv: Sv) {
        let ar = self.layout.slot(key);
        self.emit(Lir::WriteAr { slot: ar, v: sv.id });
        self.written.insert(ar, (key, sv.ty));
        self.known.insert(ar, (key, sv.ty));
    }

    fn push(&mut self, sv: Sv) {
        let depth = self.depth() as u8;
        let idx = self.frames.last().expect("frame").stack.len() as u16;
        self.frames.last_mut().expect("frame").stack.push(sv);
        self.write_ar(SlotKey::Stack { depth, idx }, sv);
    }

    fn pop(&mut self) -> Sv {
        self.frames.last_mut().expect("frame").stack.pop().expect("shadow stack underflow")
    }

    fn peek(&self, from_top: usize) -> Sv {
        let st = &self.frames.last().expect("frame").stack;
        st[st.len() - 1 - from_top]
    }

    fn set_stack_from_top(&mut self, from_top: usize, sv: Sv) {
        let depth = self.depth() as u8;
        let len = self.frames.last().expect("frame").stack.len();
        let idx = len - 1 - from_top;
        self.frames.last_mut().expect("frame").stack[idx] = sv;
        self.write_ar(SlotKey::Stack { depth, idx: idx as u16 }, sv);
    }

    /// Applies the oracle before an Int entry type is chosen (§3.2).
    fn oracle_adjust(&mut self, key: SlotKey, v: Value, oracle: &Oracle) {
        if !self.opts.enable_oracle || self.entry_types.contains_key(&key) {
            return;
        }
        if observed_type(v) == LirType::Int {
            let funcs: Vec<FuncId> = self.frames.iter().map(|f| f.func).collect();
            if let Some(vk) = var_key(key, &funcs) {
                if !oracle.may_speculate_int(vk) && self.active_site.is_none() {
                    let ar = self.layout.slot(key);
                    self.entry_types.insert(key, LirType::Double);
                    self.new_entry.push(EntrySlot { ar, key, ty: LirType::Double });
                }
            }
        }
    }

    fn local_sv(&mut self, slot: u16, interp: &Interp, oracle: &Oracle) -> Sv {
        let depth = self.depth();
        if let Some(sv) = self.frames[depth].locals[slot as usize] {
            return sv;
        }
        let key = SlotKey::Local { depth: depth as u8, slot };
        // A deeper-frame local that was never imported or written has no
        // populated AR slot; it is still its initial `undefined` (callee
        // locals are written eagerly at the inline call).
        let importable = depth == 0
            || self.entry_types.contains_key(&key)
            || self
                .layout
                .lookup(key)
                .is_some_and(|ar| self.known.contains_key(&ar) && self.active_site.is_some());
        let sv = if importable {
            let v = interp.local(slot);
            self.oracle_adjust(key, v, oracle);
            self.import_slot(key, Some(v), interp)
        } else {
            debug_assert!(interp.local(slot).is_undefined());
            self.undefined_sv()
        };
        self.frames[depth].locals[slot as usize] = Some(sv);
        sv
    }

    fn set_local(&mut self, slot: u16, sv: Sv) {
        let depth = self.depth();
        self.frames[depth].locals[slot as usize] = Some(sv);
        self.write_ar(SlotKey::Local { depth: depth as u8, slot }, sv);
    }

    fn global_sv(&mut self, slot: u32, realm: &Realm, interp: &Interp, oracle: &Oracle) -> Sv {
        if let Some(&sv) = self.globals.get(&slot) {
            return sv;
        }
        let key = SlotKey::Global(slot);
        let v = realm.global(slot);
        self.oracle_adjust(key, v, oracle);
        let sv = self.import_slot(key, Some(v), interp);
        self.globals.insert(slot, sv);
        sv
    }

    fn set_global_sv(&mut self, slot: u32, sv: Sv) {
        self.globals.insert(slot, sv);
        self.write_ar(SlotKey::Global(slot), sv);
    }

    fn undefined_sv(&mut self) -> Sv {
        let id = self.emit(Lir::ConstBoxed(Value::UNDEFINED.raw()));
        Sv { id, ty: LirType::Undefined }
    }

    fn null_sv(&mut self) -> Sv {
        let id = self.emit(Lir::ConstBoxed(Value::NULL.raw()));
        Sv { id, ty: LirType::Null }
    }

    // ==== typed helpers ====

    /// Unboxes a boxed SSA value according to an observed concrete value,
    /// guarding the type.
    fn unbox_observed(&mut self, boxed: u32, actual: Value) -> Sv {
        let e = self.guard_exit();
        match observed_type(actual) {
            LirType::Int => Sv { id: self.emit(Lir::UnboxI(boxed, e)), ty: LirType::Int },
            LirType::Double => {
                Sv { id: self.emit(Lir::UnboxNumD(boxed, e)), ty: LirType::Double }
            }
            LirType::Object => Sv { id: self.emit(Lir::UnboxObj(boxed, e)), ty: LirType::Object },
            LirType::String => Sv { id: self.emit(Lir::UnboxStr(boxed, e)), ty: LirType::String },
            LirType::Bool => Sv { id: self.emit(Lir::UnboxBool(boxed, e)), ty: LirType::Bool },
            LirType::Null => {
                self.emit(Lir::GuardBoxedEq(boxed, Value::NULL.raw(), e));
                self.null_sv()
            }
            _ => {
                self.emit(Lir::GuardBoxedEq(boxed, Value::UNDEFINED.raw(), e));
                self.undefined_sv()
            }
        }
    }

    /// Boxes a shadow value into a raw tagged word.
    fn box_sv(&mut self, sv: Sv) -> u32 {
        match sv.ty {
            LirType::Int => self.emit(Lir::BoxI(sv.id)),
            LirType::Double => self.emit(Lir::BoxD(sv.id)),
            LirType::Bool => self.emit(Lir::BoxB(sv.id)),
            LirType::Object => self.emit(Lir::BoxObj(sv.id)),
            LirType::String => self.emit(Lir::BoxStr(sv.id)),
            LirType::Null | LirType::Undefined | LirType::Boxed => sv.id,
        }
    }

    /// ToNumber: `Ok((id, is_double))`.
    fn to_num(&mut self, sv: Sv) -> Result<(u32, bool), AbortReason> {
        match sv.ty {
            LirType::Int | LirType::Bool => Ok((sv.id, false)),
            LirType::Double => Ok((sv.id, true)),
            LirType::Null => Ok((self.emit(Lir::ConstI(0)), false)),
            LirType::Undefined | LirType::Object => {
                Ok((self.emit(Lir::ConstD(f64::NAN.to_bits())), true))
            }
            // String → number runs the interpreter's own `parse_number`
            // through a pure helper; the result is always a double (the
            // recorder widens int-valued numbers elsewhere too).
            LirType::String => {
                let e = self.guard_exit();
                let id = self.emit(Lir::Call {
                    helper: Helper::StrToNum,
                    args: vec![sv.id].into_boxed_slice(),
                    ret: LirType::Double,
                    exit: e,
                });
                Ok((id, true))
            }
            LirType::Boxed => Err(AbortReason::Unsupported),
        }
    }

    fn as_double(&mut self, id: u32, is_double: bool) -> u32 {
        if is_double {
            id
        } else {
            self.emit(Lir::I2D(id))
        }
    }

    /// ToInt32: `Ok((id, full_range))`; `full_range` means the i32 may
    /// exceed the boxable 31-bit range.
    fn to_i32(&mut self, sv: Sv) -> Result<(u32, bool), AbortReason> {
        match sv.ty {
            LirType::Int | LirType::Bool => Ok((sv.id, false)),
            LirType::Double => Ok((self.emit(Lir::D2I32(sv.id)), true)),
            LirType::Null | LirType::Undefined | LirType::Object => {
                Ok((self.emit(Lir::ConstI(0)), false))
            }
            LirType::String => {
                let (d, _) = self.to_num(sv)?;
                Ok((self.emit(Lir::D2I32(d)), true))
            }
            LirType::Boxed => Err(AbortReason::Unsupported),
        }
    }

    /// A Bool-typed truthiness computation for `sv`.
    fn truthy_sv(&mut self, sv: Sv) -> Sv {
        let id = match sv.ty {
            LirType::Bool => sv.id,
            LirType::Int => {
                let zero = self.emit(Lir::ConstI(0));
                let is_zero = self.emit(Lir::EqI(sv.id, zero));
                self.emit(Lir::NotB(is_zero))
            }
            LirType::Double => {
                let zero = self.emit(Lir::ConstD(0.0f64.to_bits()));
                let lt = self.emit(Lir::LtD(sv.id, zero));
                let gt = self.emit(Lir::GtD(sv.id, zero));
                self.emit(Lir::OrI(lt, gt))
            }
            LirType::String => {
                let len = self.emit(Lir::StrLen(sv.id));
                let zero = self.emit(Lir::ConstI(0));
                self.emit(Lir::GtI(len, zero))
            }
            LirType::Object => self.emit(Lir::ConstBool(true)),
            LirType::Null | LirType::Undefined => self.emit(Lir::ConstBool(false)),
            LirType::Boxed => unreachable!("boxed value on shadow stack"),
        };
        Sv { id, ty: LirType::Bool }
    }

    // ==== the per-bytecode dispatcher ====

    /// Records the bytecode the interpreter is about to execute.
    #[allow(clippy::too_many_lines)]
    pub fn record_op(
        &mut self,
        interp: &Interp,
        realm: &mut Realm,
        oracle: &Oracle,
    ) -> RecordAction {
        debug_assert!(self.finish.is_none(), "recording after finish");
        if self.buf.trace().code.len() > self.opts.max_trace_len
            || self.buf.trace().num_exits > u16::MAX - 8
        {
            return RecordAction::Abort(AbortReason::TraceTooLong);
        }

        let frame = interp.frame();
        let pc = frame.pc;

        // Left the anchor loop? (§3.2 "the trace might exit the loop").
        if self.depth() == 0
            && !(self.anchor_range.0..self.anchor_range.1).contains(&pc)
        {
            self.finish_leave(pc);
            return RecordAction::Finished;
        }

        // Reset the per-op guard-exit state.
        self.cur_exit = None;
        self.pre_pc = pc;
        self.pre_depths = self.frames.iter().map(|f| f.stack.len() as u16).collect();
        self.site_ok = oracle.may_speculate_int_site((frame.func, pc));
        self.ops_recorded += 1;

        let op = interp.current_op();
        match self.dispatch(op, interp, realm, oracle) {
            Ok(action) => action,
            Err(reason) => RecordAction::Abort(reason),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(
        &mut self,
        op: Op,
        interp: &Interp,
        realm: &mut Realm,
        oracle: &Oracle,
    ) -> Result<RecordAction, AbortReason> {
        use RecordAction::Step;
        let step = Ok(Step { observe: false });
        match op {
            Op::Int(i) => {
                let id = self.emit(Lir::ConstI(i));
                self.push(Sv { id, ty: LirType::Int });
            }
            Op::Num(i) => {
                let v = interp.installed().literals.numbers[i as usize];
                let d = realm.heap.number_value(v).expect("number literal");
                let id = self.emit(Lir::ConstD(d.to_bits()));
                self.push(Sv { id, ty: LirType::Double });
            }
            Op::Str(i) => {
                let v = interp.installed().literals.atoms[i as usize];
                let h = v.as_string().expect("string literal").0;
                let id = self.emit(Lir::ConstStr(h));
                self.push(Sv { id, ty: LirType::String });
            }
            Op::True => {
                let id = self.emit(Lir::ConstBool(true));
                self.push(Sv { id, ty: LirType::Bool });
            }
            Op::False => {
                let id = self.emit(Lir::ConstBool(false));
                self.push(Sv { id, ty: LirType::Bool });
            }
            Op::Null => {
                let sv = self.null_sv();
                self.push(sv);
            }
            Op::Undefined => {
                let sv = self.undefined_sv();
                self.push(sv);
            }

            Op::GetLocal(s) => {
                let sv = self.local_sv(s, interp, oracle);
                self.push(sv);
            }
            Op::SetLocal(s) => {
                let v = self.pop();
                self.set_local(s, v);
            }
            Op::GetGlobal(g) => {
                let sv = self.global_sv(g, realm, interp, oracle);
                self.push(sv);
            }
            Op::SetGlobal(g) => {
                let v = self.pop();
                self.set_global_sv(g, v);
            }

            Op::Pop => {
                self.pop();
            }
            Op::Dup => {
                let v = self.peek(0);
                self.push(v);
            }
            Op::Swap => {
                let a = self.peek(0);
                let b = self.peek(1);
                self.set_stack_from_top(0, b);
                self.set_stack_from_top(1, a);
            }

            Op::Add => self.record_add(interp, realm)?,
            Op::Sub => self.record_arith(ArithKind::Sub, interp, realm)?,
            Op::Mul => self.record_arith(ArithKind::Mul, interp, realm)?,
            Op::Div => {
                let b = self.pop();
                let a = self.pop();
                let (bi, bd) = self.to_num(b)?;
                let (ai, ad) = self.to_num(a)?;
                let bd2 = self.as_double(bi, bd);
                let ad2 = self.as_double(ai, ad);
                let id = self.emit(Lir::DivD(ad2, bd2));
                self.push(Sv { id, ty: LirType::Double });
            }
            Op::Mod => self.record_arith(ArithKind::Mod, interp, realm)?,
            Op::Neg => {
                let a = self.pop();
                let actual = top_value(interp, 0);
                let (ai, ad) = self.to_num(a)?;
                let neg_is_int = !ad && {
                    let x = rt_ops::to_number(realm, actual);
                    let r = -x;
                    x != 0.0 && r == r.trunc() && Value::fits_int(r as i64)
                };
                if neg_is_int {
                    let e = self.guard_exit();
                    let id = self.emit(Lir::NegIChk(ai, e));
                    self.push(Sv { id, ty: LirType::Int });
                } else {
                    let d = self.as_double(ai, ad);
                    let id = self.emit(Lir::NegD(d));
                    self.push(Sv { id, ty: LirType::Double });
                }
            }
            Op::Pos => {
                let a = self.pop();
                match a.ty {
                    LirType::Int | LirType::Double => self.push(a),
                    _ => {
                        let (id, is_d) = self.to_num(a)?;
                        let ty = if is_d { LirType::Double } else { LirType::Int };
                        self.push(Sv { id, ty });
                    }
                }
            }

            Op::BitAnd => self.record_bitop(BitKind::And, interp, realm)?,
            Op::BitOr => self.record_bitop(BitKind::Or, interp, realm)?,
            Op::BitXor => self.record_bitop(BitKind::Xor, interp, realm)?,
            Op::Shl => self.record_bitop(BitKind::Shl, interp, realm)?,
            Op::Shr => self.record_bitop(BitKind::Shr, interp, realm)?,
            Op::UShr => self.record_bitop(BitKind::UShr, interp, realm)?,
            Op::BitNot => {
                let a = self.pop();
                let actual = top_value(interp, 0);
                let (ai, full) = self.to_i32(a)?;
                let id = self.emit(Lir::NotI(ai));
                self.push_i32_result(id, full, bitnot_value(realm, actual));
            }

            Op::Lt => self.record_rel(RelKind::Lt, interp, realm)?,
            Op::Le => self.record_rel(RelKind::Le, interp, realm)?,
            Op::Gt => self.record_rel(RelKind::Gt, interp, realm)?,
            Op::Ge => self.record_rel(RelKind::Ge, interp, realm)?,
            Op::Eq => self.record_eq(false, false)?,
            Op::Ne => self.record_eq(false, true)?,
            Op::StrictEq => self.record_eq(true, false)?,
            Op::StrictNe => self.record_eq(true, true)?,
            Op::Not => {
                let a = self.pop();
                let t = self.truthy_sv(a);
                let id = self.emit(Lir::NotB(t.id));
                self.push(Sv { id, ty: LirType::Bool });
            }
            Op::Typeof => {
                let a = self.pop();
                let s = match a.ty {
                    LirType::Int | LirType::Double => "number",
                    LirType::Bool => "boolean",
                    LirType::String => "string",
                    LirType::Null => "object",
                    LirType::Undefined => "undefined",
                    LirType::Object => {
                        let actual = top_value(interp, 0);
                        let oid = actual.as_object().expect("object-typed shadow");
                        // The class is guarded so function-vs-object stays
                        // correct on later runs.
                        let class = realm.heap.object(oid).class;
                        let e = self.guard_exit();
                        self.emit(Lir::GuardClass { obj: a.id, class: class as u8, exit: e });
                        if class == ObjectClass::Function {
                            "function"
                        } else {
                            "object"
                        }
                    }
                    LirType::Boxed => unreachable!("boxed on shadow stack"),
                };
                let atom = realm.typeof_atom(s);
                let id = self.emit(Lir::ConstStr(atom.as_string().expect("atom").0));
                self.push(Sv { id, ty: LirType::String });
            }

            Op::NewArray(n) => {
                let n = n as usize;
                let len = self.emit(Lir::ConstI(n as i32));
                let e = self.guard_exit();
                let arr = self.emit(Lir::Call {
                    helper: Helper::NewArray,
                    args: vec![len].into_boxed_slice(),
                    ret: LirType::Object,
                    exit: e,
                });
                // Pop elements (last on top) and store them.
                let mut elems = Vec::with_capacity(n);
                for _ in 0..n {
                    elems.push(self.pop());
                }
                elems.reverse();
                for (i, el) in elems.into_iter().enumerate() {
                    let idx = self.emit(Lir::ConstI(i as i32));
                    let boxed = self.box_sv(el);
                    self.emit(Lir::StoreElem(arr, idx, boxed));
                }
                self.push(Sv { id: arr, ty: LirType::Object });
            }
            Op::NewObject => {
                let proto = self.emit(Lir::ConstBoxed(tm_runtime::trace_helpers::NO_PROTO));
                let e = self.guard_exit();
                let obj = self.emit(Lir::Call {
                    helper: Helper::NewObject,
                    args: vec![proto].into_boxed_slice(),
                    ret: LirType::Object,
                    exit: e,
                });
                self.push(Sv { id: obj, ty: LirType::Object });
            }
            Op::InitProp(sym, site) => {
                let v = self.pop();
                let objsv = self.peek(0);
                let actual_obj = top_value(interp, 1);
                let ic = interp.ics.get(site as usize).copied().unwrap_or_default();
                self.record_set_prop(objsv, sym, v, actual_obj, ic, realm)?;
            }
            Op::GetProp(sym, site) => {
                let base = self.pop();
                let actual = top_value(interp, 0);
                let ic = interp.ics.get(site as usize).copied().unwrap_or_default();
                let result = self.record_get_prop(base, sym, actual, ic, interp, realm)?;
                self.push(result);
            }
            Op::SetProp(sym, site) => {
                let v = self.pop();
                let base = self.pop();
                let actual_obj = top_value(interp, 1);
                let ic = interp.ics.get(site as usize).copied().unwrap_or_default();
                self.record_set_prop(base, sym, v, actual_obj, ic, realm)?;
                self.push(v);
            }
            Op::GetElem => {
                let idx = self.pop();
                let base = self.pop();
                let actual_idx = top_value(interp, 0);
                let actual_base = top_value(interp, 1);
                let result =
                    self.record_get_elem(base, idx, actual_base, actual_idx, realm)?;
                self.push(result);
            }
            Op::SetElem => {
                let v = self.pop();
                let idx = self.pop();
                let base = self.pop();
                let actual_idx = top_value(interp, 1);
                let actual_base = top_value(interp, 2);
                self.record_set_elem(base, idx, v, actual_base, actual_idx, realm)?;
                self.push(v);
            }

            Op::Call(argc) => return self.record_call(argc, false, interp, realm),
            Op::New(argc) => return self.record_call(argc, true, interp, realm),
            Op::Return | Op::ReturnUndef => {
                if self.frames.len() == 1 {
                    // Returning out of the entry frame leaves the trace
                    // region. Snapshot *before* popping the result: the
                    // interpreter re-executes the Return at the exit and
                    // pops the result itself.
                    self.finish_leave(self.pre_pc);
                    return Ok(RecordAction::Finished);
                }
                let result = if matches!(op, Op::Return) {
                    self.pop()
                } else {
                    self.undefined_sv()
                };
                let frame = self.frames.pop().expect("frame");
                let result = if frame.is_construct && result.ty != LirType::Object {
                    frame.locals[0].expect("this is always set")
                } else {
                    result
                };
                self.push(result);
            }

            Op::Jump(_) => {}
            Op::JumpIfFalse(_) | Op::JumpIfTrue(_) => {
                let c = self.pop();
                let actual = top_value(interp, 0);
                let t = self.truthy_sv(c);
                let e = self.guard_exit();
                if rt_ops::truthy(realm, actual) {
                    self.emit(Lir::GuardTrue(t.id, e));
                } else {
                    self.emit(Lir::GuardFalse(t.id, e));
                }
            }
            Op::AndJump(_) => {
                let c = self.peek(0);
                let actual = top_value(interp, 0);
                let t = self.truthy_sv(c);
                let e = self.guard_exit();
                if rt_ops::truthy(realm, actual) {
                    self.emit(Lir::GuardTrue(t.id, e));
                    self.pop();
                } else {
                    self.emit(Lir::GuardFalse(t.id, e));
                }
            }
            Op::OrJump(_) => {
                let c = self.peek(0);
                let actual = top_value(interp, 0);
                let t = self.truthy_sv(c);
                let e = self.guard_exit();
                if rt_ops::truthy(realm, actual) {
                    self.emit(Lir::GuardTrue(t.id, e));
                } else {
                    self.emit(Lir::GuardFalse(t.id, e));
                    self.pop();
                }
            }

            Op::LoopHeader(loop_id) => {
                let frame = interp.frame();
                if self.anchor.kind == AnchorKind::LoopHeader
                    && self.depth() == 0
                    && frame.func == self.anchor.func
                    && frame.pc == self.anchor.pc
                {
                    debug_assert!(
                        self.frames[0].stack.is_empty(),
                        "operand stack must be empty at a loop header"
                    );
                    self.finish_at_anchor();
                    return Ok(RecordAction::Finished);
                }
                if self.nested_anchors.contains(&(frame.func, frame.pc)) {
                    // We already called this inner tree during this
                    // recording and came back around to its header: the
                    // inner call exited mid-loop, so the outer trace cannot
                    // treat it as a subroutine. Abort and let the inner
                    // tree grow (§4.1/§4.2).
                    return Err(AbortReason::InnerTreeCallFailed);
                }
                self.nested_anchors.push((frame.func, frame.pc));
                return Ok(RecordAction::InnerLoop { func: frame.func, pc: frame.pc, loop_id });
            }
            Op::Nop => {}
        }
        step
    }

    /// Called by the monitor after stepping an instruction that needed its
    /// result observed (native calls).
    pub fn after_step(&mut self, interp: &Interp, realm: &mut Realm) {
        let Some((pending, call_id)) = self.pending_native.take() else {
            return;
        };
        let actual = top_value(interp, 0);
        let sv = match pending {
            PendingNative::Generic => self.unbox_observed(call_id, actual),
            PendingNative::Fast(helper, ret) => match ret {
                FastTy::Double => Sv { id: call_id, ty: LirType::Double },
                FastTy::Str => Sv { id: call_id, ty: LirType::String },
                FastTy::Obj => Sv { id: call_id, ty: LirType::Object },
                FastTy::Int => {
                    if helper == Helper::CharCodeAt {
                        // §6.3: charCodeAt returns an integer or NaN; the
                        // helper encodes NaN as -1 and we guard the
                        // observed case.
                        let zero = self.emit(Lir::ConstI(0));
                        let is_nan = realm
                            .heap
                            .number_value(actual)
                            .is_none_or(f64::is_nan);
                        let e = self.guard_exit();
                        if is_nan {
                            let ltz = self.emit(Lir::LtI(call_id, zero));
                            self.emit(Lir::GuardTrue(ltz, e));
                            let id = self.emit(Lir::ConstD(f64::NAN.to_bits()));
                            Sv { id, ty: LirType::Double }
                        } else {
                            let gez = self.emit(Lir::GeI(call_id, zero));
                            self.emit(Lir::GuardTrue(gez, e));
                            Sv { id: call_id, ty: LirType::Int }
                        }
                    } else {
                        Sv { id: call_id, ty: LirType::Int }
                    }
                }
            },
        };
        self.push(sv);
    }

    // ==== complex op recorders ====

    fn record_add(&mut self, interp: &Interp, realm: &mut Realm) -> Result<(), AbortReason> {
        let b_actual = top_value(interp, 0);
        let a_actual = top_value(interp, 1);
        let b = self.pop();
        let a = self.pop();
        if a.ty == LirType::String || b.ty == LirType::String {
            let a_str = self.stringify(a)?;
            let b_str = self.stringify(b)?;
            let e = self.guard_exit();
            let id = self.emit(Lir::Call {
                helper: Helper::ConcatStrings,
                args: vec![a_str, b_str].into_boxed_slice(),
                ret: LirType::String,
                exit: e,
            });
            self.push(Sv { id, ty: LirType::String });
            return Ok(());
        }
        let stays_int = self.int_result(a, b, a_actual, b_actual, realm, |x, y| x + y)
            && self.site_may_speculate();
        let (bi, bd) = self.to_num(b)?;
        let (ai, ad) = self.to_num(a)?;
        if stays_int {
            let e = self.arith_guard_exit();
            let id = self.emit(Lir::AddIChk(ai, bi, e));
            self.push(Sv { id, ty: LirType::Int });
        } else {
            let bd2 = self.as_double(bi, bd);
            let ad2 = self.as_double(ai, ad);
            let id = self.emit(Lir::AddD(ad2, bd2));
            self.push(Sv { id, ty: LirType::Double });
        }
        Ok(())
    }

    /// Converts a shadow value to a string SSA id (for concatenation).
    fn stringify(&mut self, sv: Sv) -> Result<u32, AbortReason> {
        match sv.ty {
            LirType::String => Ok(sv.id),
            LirType::Int => {
                let e = self.guard_exit();
                Ok(self.emit(Lir::Call {
                    helper: Helper::IntToString,
                    args: vec![sv.id].into_boxed_slice(),
                    ret: LirType::String,
                    exit: e,
                }))
            }
            LirType::Double => {
                let e = self.guard_exit();
                Ok(self.emit(Lir::Call {
                    helper: Helper::NumberToString,
                    args: vec![sv.id].into_boxed_slice(),
                    ret: LirType::String,
                    exit: e,
                }))
            }
            _ => Err(AbortReason::Unsupported),
        }
    }

    /// Whether an int fast path applies: both operands int-like and the
    /// exact result is a boxable integer right now.
    fn int_result(
        &self,
        a: Sv,
        b: Sv,
        a_actual: Value,
        b_actual: Value,
        realm: &Realm,
        f: impl Fn(i64, i64) -> i64,
    ) -> bool {
        let int_like =
            |sv: Sv| matches!(sv.ty, LirType::Int | LirType::Bool | LirType::Null);
        if !int_like(a) || !int_like(b) {
            return false;
        }
        let ax = rt_ops::to_number(realm, a_actual) as i64;
        let bx = rt_ops::to_number(realm, b_actual) as i64;
        Value::fits_int(f(ax, bx))
    }

    fn record_arith(
        &mut self,
        kind: ArithKind,
        interp: &Interp,
        realm: &mut Realm,
    ) -> Result<(), AbortReason> {
        let b_actual = top_value(interp, 0);
        let a_actual = top_value(interp, 1);
        let b = self.pop();
        let a = self.pop();
        let stays_int = match kind {
            ArithKind::Sub => self.int_result(a, b, a_actual, b_actual, realm, |x, y| x - y),
            ArithKind::Mul => {
                self.int_result(a, b, a_actual, b_actual, realm, |x, y| x * y)
                    && !mul_is_neg_zero(realm, a_actual, b_actual)
            }
            ArithKind::Mod => {
                self.int_result(a, b, a_actual, b_actual, realm, |x, y| {
                    if y == 0 {
                        i64::MAX // force the double path
                    } else {
                        x % y
                    }
                }) && mod_stays_int(realm, a_actual, b_actual)
            }
        };
        let stays_int = stays_int && self.site_may_speculate();
        let (bi, bd) = self.to_num(b)?;
        let (ai, ad) = self.to_num(a)?;
        if stays_int {
            let e = self.arith_guard_exit();
            let id = match kind {
                ArithKind::Sub => self.emit(Lir::SubIChk(ai, bi, e)),
                ArithKind::Mul => self.emit(Lir::MulIChk(ai, bi, e)),
                ArithKind::Mod => self.emit(Lir::ModIChk(ai, bi, e)),
            };
            self.push(Sv { id, ty: LirType::Int });
        } else {
            let bd2 = self.as_double(bi, bd);
            let ad2 = self.as_double(ai, ad);
            let id = match kind {
                ArithKind::Sub => self.emit(Lir::SubD(ad2, bd2)),
                ArithKind::Mul => self.emit(Lir::MulD(ad2, bd2)),
                ArithKind::Mod => self.emit(Lir::ModD(ad2, bd2)),
            };
            self.push(Sv { id, ty: LirType::Double });
        }
        Ok(())
    }

    fn record_bitop(
        &mut self,
        kind: BitKind,
        interp: &Interp,
        realm: &mut Realm,
    ) -> Result<(), AbortReason> {
        let b_actual = top_value(interp, 0);
        let a_actual = top_value(interp, 1);
        let b = self.pop();
        let a = self.pop();
        let (bi, bfull) = self.to_i32(b)?;
        let (ai, afull) = self.to_i32(a)?;
        let ax = rt_ops::to_int32(realm, a_actual);
        let bx = rt_ops::to_int32(realm, b_actual);
        match kind {
            BitKind::And | BitKind::Or | BitKind::Xor | BitKind::Shr => {
                let id = match kind {
                    BitKind::And => self.emit(Lir::AndI(ai, bi)),
                    BitKind::Or => self.emit(Lir::OrI(ai, bi)),
                    BitKind::Xor => self.emit(Lir::XorI(ai, bi)),
                    _ => self.emit(Lir::ShrI(ai, bi)),
                };
                let actual_res: i64 = match kind {
                    BitKind::And => i64::from(ax & bx),
                    BitKind::Or => i64::from(ax | bx),
                    BitKind::Xor => i64::from(ax ^ bx),
                    _ => i64::from(ax.wrapping_shr((bx & 31) as u32)),
                };
                // &,|,^,>> are closed over the boxable range (see the LIR
                // docs); a range check is only needed when an operand came
                // from a full-range ToInt32.
                self.push_i32_result(id, afull || bfull, actual_res);
            }
            BitKind::Shl => {
                let actual_res = i64::from(ax.wrapping_shl((bx & 31) as u32));
                if Value::fits_int(actual_res) && self.site_may_speculate() {
                    let e = self.arith_guard_exit();
                    let id = self.emit(Lir::ShlIChk(ai, bi, e));
                    self.push(Sv { id, ty: LirType::Int });
                } else {
                    let id = self.emit(Lir::ShlI(ai, bi));
                    let d = self.emit(Lir::I2D(id));
                    self.push(Sv { id: d, ty: LirType::Double });
                }
            }
            BitKind::UShr => {
                let actual_res = i64::from((ax as u32).wrapping_shr((bx & 31) as u32));
                if Value::fits_int(actual_res) && self.site_may_speculate() {
                    let e = self.arith_guard_exit();
                    let id = self.emit(Lir::UShrIChk(ai, bi, e));
                    self.push(Sv { id, ty: LirType::Int });
                } else {
                    let id = self.emit(Lir::UShrI(ai, bi));
                    let d = self.emit(Lir::U2D(id));
                    self.push(Sv { id: d, ty: LirType::Double });
                }
            }
        }
        Ok(())
    }

    /// Pushes an i32-valued result: in-range ints stay ints (guarded when
    /// the computation could leave the range), others widen to double.
    fn push_i32_result(&mut self, id: u32, may_escape: bool, actual: i64) {
        if Value::fits_int(actual) && (!may_escape || self.site_may_speculate()) {
            if may_escape {
                let e = self.arith_guard_exit();
                let checked = self.emit(Lir::ChkRangeI(id, e));
                self.push(Sv { id: checked, ty: LirType::Int });
            } else {
                self.push(Sv { id, ty: LirType::Int });
            }
        } else {
            let d = self.emit(Lir::I2D(id));
            self.push(Sv { id: d, ty: LirType::Double });
        }
    }

    fn record_rel(
        &mut self,
        kind: RelKind,
        interp: &Interp,
        realm: &mut Realm,
    ) -> Result<(), AbortReason> {
        let _ = (interp, realm);
        let b = self.pop();
        let a = self.pop();
        if a.ty == LirType::String && b.ty == LirType::String {
            let e = self.guard_exit();
            let cmp = self.emit(Lir::Call {
                helper: Helper::StrCmp,
                args: vec![a.id, b.id].into_boxed_slice(),
                ret: LirType::Int,
                exit: e,
            });
            let zero = self.emit(Lir::ConstI(0));
            let id = match kind {
                RelKind::Lt => self.emit(Lir::LtI(cmp, zero)),
                RelKind::Le => self.emit(Lir::LeI(cmp, zero)),
                RelKind::Gt => self.emit(Lir::GtI(cmp, zero)),
                RelKind::Ge => self.emit(Lir::GeI(cmp, zero)),
            };
            self.push(Sv { id, ty: LirType::Bool });
            return Ok(());
        }
        if a.ty == LirType::String || b.ty == LirType::String {
            // Mixed string/number comparison: generic helper.
            let helper = match kind {
                RelKind::Lt => Helper::LtAny,
                RelKind::Le => Helper::LeAny,
                RelKind::Gt => Helper::GtAny,
                RelKind::Ge => Helper::GeAny,
            };
            let ab = self.box_sv(a);
            let bb = self.box_sv(b);
            let e = self.guard_exit();
            let r = self.emit(Lir::Call {
                helper,
                args: vec![ab, bb].into_boxed_slice(),
                ret: LirType::Boxed,
                exit: e,
            });
            let e2 = self.guard_exit();
            let id = self.emit(Lir::UnboxBool(r, e2));
            self.push(Sv { id, ty: LirType::Bool });
            return Ok(());
        }
        let (bi, bd) = self.to_num(b)?;
        let (ai, ad) = self.to_num(a)?;
        let id = if ad || bd {
            let bd2 = self.as_double(bi, bd);
            let ad2 = self.as_double(ai, ad);
            match kind {
                RelKind::Lt => self.emit(Lir::LtD(ad2, bd2)),
                RelKind::Le => self.emit(Lir::LeD(ad2, bd2)),
                RelKind::Gt => self.emit(Lir::GtD(ad2, bd2)),
                RelKind::Ge => self.emit(Lir::GeD(ad2, bd2)),
            }
        } else {
            match kind {
                RelKind::Lt => self.emit(Lir::LtI(ai, bi)),
                RelKind::Le => self.emit(Lir::LeI(ai, bi)),
                RelKind::Gt => self.emit(Lir::GtI(ai, bi)),
                RelKind::Ge => self.emit(Lir::GeI(ai, bi)),
            }
        };
        self.push(Sv { id, ty: LirType::Bool });
        Ok(())
    }

    fn record_eq(&mut self, strict: bool, negate: bool) -> Result<(), AbortReason> {
        use LirType::{Bool, Double, Int, Null, Object, String as Str, Undefined};
        let b = self.pop();
        let a = self.pop();
        let push_const = |rec: &mut Self, v: bool| {
            let id = rec.emit(Lir::ConstBool(v != negate));
            rec.push(Sv { id, ty: LirType::Bool });
        };
        let id = match (a.ty, b.ty) {
            (Int, Int) | (Bool, Bool) | (Object, Object) => self.emit(Lir::EqI(a.id, b.id)),
            (Int | Double, Int | Double) => {
                let ad = self.as_double(a.id, a.ty == Double);
                let bd = self.as_double(b.id, b.ty == Double);
                self.emit(Lir::EqD(ad, bd))
            }
            (Str, Str) => {
                let e = self.guard_exit();
                self.emit(Lir::Call {
                    helper: Helper::StrEq,
                    args: vec![a.id, b.id].into_boxed_slice(),
                    ret: LirType::Bool,
                    exit: e,
                })
            }
            (Null, Null) | (Undefined, Undefined) => {
                push_const(self, true);
                return Ok(());
            }
            (Null, Undefined) | (Undefined, Null) => {
                push_const(self, !strict);
                return Ok(());
            }
            (Bool, Int | Double) | (Int | Double, Bool) if !strict => {
                // ToNumber(bool) is its 0/1 word.
                let (ai, ad) = self.to_num(a)?;
                let (bi, bd) = self.to_num(b)?;
                if ad || bd {
                    let a2 = self.as_double(ai, ad);
                    let b2 = self.as_double(bi, bd);
                    self.emit(Lir::EqD(a2, b2))
                } else {
                    self.emit(Lir::EqI(ai, bi))
                }
            }
            (Str, Int | Double) | (Int | Double, Str) if !strict => {
                let ab = self.box_sv(a);
                let bb = self.box_sv(b);
                let e = self.guard_exit();
                let r = self.emit(Lir::Call {
                    helper: Helper::EqAny,
                    args: vec![ab, bb].into_boxed_slice(),
                    ret: LirType::Boxed,
                    exit: e,
                });
                let e2 = self.guard_exit();
                self.emit(Lir::UnboxBool(r, e2))
            }
            // Remaining combinations are statically unequal under both
            // strict and (our simplified) loose semantics.
            _ => {
                push_const(self, false);
                return Ok(());
            }
        };
        let id = if negate { self.emit(Lir::NotB(id)) } else { id };
        self.push(Sv { id, ty: LirType::Bool });
        Ok(())
    }

    fn record_get_prop(
        &mut self,
        base: Sv,
        sym: Sym,
        actual_base: Value,
        ic: PropIc,
        interp: &Interp,
        realm: &mut Realm,
    ) -> Result<Sv, AbortReason> {
        let _ = interp;
        match base.ty {
            LirType::Object => {
                let oid = actual_base.as_object().expect("object-typed shadow");
                if sym == realm.sym_length && realm.heap.object(oid).class == ObjectClass::Array {
                    let e = self.guard_exit();
                    self.emit(Lir::GuardClass {
                        obj: base.id,
                        class: ObjectClass::Array as u8,
                        exit: e,
                    });
                    let id = self.emit(Lir::ArrayLen(base.id));
                    return Ok(Sv { id, ty: LirType::Int });
                }
                // Per-site IC: the interpreter already proved this site
                // monomorphic for this shape, so emit the single shape
                // guard + slot load directly — no shape-table walk while
                // recording (the guard is identical to the walk's
                // first-level own-property case).
                let shape = realm.heap.object(oid).shape;
                if let IcKind::GetSlot(slot) = ic.kind {
                    if ic.matches(shape, realm.shapes.epoch()) {
                        let e = self.guard_exit();
                        self.emit(Lir::GuardShape { obj: base.id, shape: shape.0, exit: e });
                        let boxed = self.emit(Lir::LoadSlot(base.id, slot));
                        let value = realm.heap.object(oid).slots[slot as usize];
                        return Ok(self.unbox_observed(boxed, value));
                    }
                }
                // Walk the prototype chain, guarding every shape — the
                // paper's "two or three loads" property access (§3.1).
                let mut cur_id = oid;
                let mut cur_sv = base.id;
                loop {
                    let shape = realm.heap.object(cur_id).shape;
                    let e = self.guard_exit();
                    self.emit(Lir::GuardShape { obj: cur_sv, shape: shape.0, exit: e });
                    if let Some(slot) = realm.shapes.lookup(shape, sym) {
                        let boxed = self.emit(Lir::LoadSlot(cur_sv, slot));
                        let value = realm.heap.object(cur_id).slots[slot as usize];
                        return Ok(self.unbox_observed(boxed, value));
                    }
                    match realm.heap.object(cur_id).proto {
                        Some(p) => {
                            cur_sv = self.emit(Lir::LoadProto(cur_sv));
                            cur_id = p;
                        }
                        None => {
                            let sv = self.undefined_sv();
                            return Ok(sv);
                        }
                    }
                }
            }
            LirType::String => {
                if sym == realm.sym_length {
                    let id = self.emit(Lir::StrLen(base.id));
                    return Ok(Sv { id, ty: LirType::Int });
                }
                // String methods live on the (stable, rooted) string
                // prototype object.
                let proto = realm.string_proto.ok_or(AbortReason::Unsupported)?;
                let proto_sv = self.emit(Lir::ConstObj(proto.0));
                let proto_val = Value::new_object(proto);
                let sv = Sv { id: proto_sv, ty: LirType::Object };
                self.record_get_prop(sv, sym, proto_val, PropIc::default(), interp, realm)
            }
            _ => Err(AbortReason::Unsupported),
        }
    }

    fn record_set_prop(
        &mut self,
        base: Sv,
        sym: Sym,
        v: Sv,
        actual_base: Value,
        ic: PropIc,
        realm: &mut Realm,
    ) -> Result<(), AbortReason> {
        if base.ty != LirType::Object {
            return Err(AbortReason::Unsupported);
        }
        let oid = actual_base.as_object().expect("object-typed shadow");
        let shape = realm.heap.object(oid).shape;
        let e = self.guard_exit();
        self.emit(Lir::GuardShape { obj: base.id, shape: shape.0, exit: e });
        let boxed = self.box_sv(v);
        // Per-site IC: skip the shape-table walk when the interpreter has
        // already resolved this site against the guarded shape.
        if ic.matches(shape, realm.shapes.epoch()) {
            if let IcKind::SetSlot(slot) = ic.kind {
                self.emit(Lir::StoreSlot(base.id, slot, boxed));
                return Ok(());
            }
        }
        if let Some(slot) = realm.shapes.lookup(shape, sym) {
            self.emit(Lir::StoreSlot(base.id, slot, boxed));
        } else {
            // Shape transition: the slow path (deterministic given the
            // guarded starting shape).
            let sym_const = self.emit(Lir::ConstI(sym.0 as i32));
            let e = self.guard_exit();
            self.emit(Lir::Call {
                helper: Helper::SetPropSlow,
                args: vec![base.id, sym_const, boxed].into_boxed_slice(),
                ret: LirType::Int,
                exit: e,
            });
        }
        Ok(())
    }

    fn record_get_elem(
        &mut self,
        base: Sv,
        idx: Sv,
        actual_base: Value,
        actual_idx: Value,
        realm: &mut Realm,
    ) -> Result<Sv, AbortReason> {
        let dense = base.ty == LirType::Object
            && actual_base
                .as_object()
                .is_some_and(|o| realm.heap.object(o).class == ObjectClass::Array)
            && actual_idx.as_int().is_some_and(|i| {
                i >= 0
                    && (i as usize)
                        < realm
                            .heap
                            .object(actual_base.as_object().expect("object"))
                            .elements
                            .len()
            });
        if dense {
            let idx_int = self.idx_to_int(idx)?;
            let e = self.guard_exit();
            self.emit(Lir::GuardClass {
                obj: base.id,
                class: ObjectClass::Array as u8,
                exit: e,
            });
            let e2 = self.guard_exit();
            self.emit(Lir::GuardBound { arr: base.id, idx: idx_int, exit: e2 });
            let boxed = self.emit(Lir::LoadElem(base.id, idx_int));
            let oid = actual_base.as_object().expect("object");
            let i = actual_idx.as_int().expect("int index");
            let value = realm.heap.object(oid).element(i as u32);
            return Ok(self.unbox_observed(boxed, value));
        }
        // Generic path (string indexing, out-of-bounds, property keys).
        if matches!(base.ty, LirType::Null | LirType::Undefined | LirType::Boxed) {
            return Err(AbortReason::Unsupported);
        }
        let bb = self.box_sv(base);
        let ib = self.box_sv(idx);
        let e = self.guard_exit();
        let r = self.emit(Lir::Call {
            helper: Helper::GetElemAny,
            args: vec![bb, ib].into_boxed_slice(),
            ret: LirType::Boxed,
            exit: e,
        });
        let value = realm
            .get_elem(actual_base, actual_idx)
            .map_err(|_| AbortReason::GuestError)?;
        Ok(self.unbox_observed(r, value))
    }

    fn idx_to_int(&mut self, idx: Sv) -> Result<u32, AbortReason> {
        match idx.ty {
            LirType::Int => Ok(idx.id),
            LirType::Double => {
                let e = self.guard_exit();
                Ok(self.emit(Lir::D2IChk(idx.id, e)))
            }
            _ => Err(AbortReason::Unsupported),
        }
    }

    fn record_set_elem(
        &mut self,
        base: Sv,
        idx: Sv,
        v: Sv,
        actual_base: Value,
        actual_idx: Value,
        realm: &mut Realm,
    ) -> Result<(), AbortReason> {
        let is_array = base.ty == LirType::Object
            && actual_base
                .as_object()
                .is_some_and(|o| realm.heap.object(o).class == ObjectClass::Array);
        let int_idx = actual_idx.as_int();
        if is_array {
            if let Some(i) = int_idx {
                let oid = actual_base.as_object().expect("object");
                let in_bounds = i >= 0 && (i as usize) < realm.heap.object(oid).elements.len();
                let idx_int = self.idx_to_int(idx)?;
                let e = self.guard_exit();
                self.emit(Lir::GuardClass {
                    obj: base.id,
                    class: ObjectClass::Array as u8,
                    exit: e,
                });
                let boxed = self.box_sv(v);
                if in_bounds {
                    let e2 = self.guard_exit();
                    self.emit(Lir::GuardBound { arr: base.id, idx: idx_int, exit: e2 });
                    self.emit(Lir::StoreElem(base.id, idx_int, boxed));
                } else if i >= 0 {
                    // The paper's Figure 3 path: call js_Array_set.
                    let e2 = self.guard_exit();
                    let zero = self.emit(Lir::ConstI(0));
                    let ge0 = self.emit(Lir::GeI(idx_int, zero));
                    self.emit(Lir::GuardTrue(ge0, e2));
                    let e3 = self.guard_exit();
                    self.emit(Lir::Call {
                        helper: Helper::ArraySetElem,
                        args: vec![base.id, idx_int, boxed].into_boxed_slice(),
                        ret: LirType::Int,
                        exit: e3,
                    });
                } else {
                    return Err(AbortReason::Unsupported);
                }
                return Ok(());
            }
        }
        // Generic path.
        if matches!(base.ty, LirType::Null | LirType::Undefined | LirType::Boxed) {
            return Err(AbortReason::Unsupported);
        }
        let bb = self.box_sv(base);
        let ib = self.box_sv(idx);
        let vb = self.box_sv(v);
        let e = self.guard_exit();
        self.emit(Lir::Call {
            helper: Helper::SetElemAny,
            args: vec![bb, ib, vb].into_boxed_slice(),
            ret: LirType::Int,
            exit: e,
        });
        Ok(())
    }

    fn record_call(
        &mut self,
        argc: u8,
        is_construct: bool,
        interp: &Interp,
        realm: &mut Realm,
    ) -> Result<RecordAction, AbortReason> {
        let argc = argc as usize;
        // Stack (Call): [callee, this, args...]; (New): [callee, args...].
        let callee_offset = if is_construct { argc } else { argc + 1 };
        let callee_actual = top_value(interp, callee_offset);
        let callee_sv = self.peek(callee_offset);
        let Some(callee_oid) = callee_actual.as_object() else {
            // The interpreter will raise a TypeError when it re-executes
            // this call; that is a guest-visible error, but *recording*
            // stops because the callee is not callable — keep the two
            // distinct in the abort taxonomy.
            return Err(AbortReason::NotCallable);
        };
        if callee_sv.ty != LirType::Object {
            return Err(AbortReason::Unsupported);
        }
        let Some(callee_kind) = realm.heap.object(callee_oid).callee else {
            return Err(AbortReason::NotCallable);
        };
        // Function identity guard ("the recorder must also emit LIR to
        // guard that the function is the same", §3.1).
        let e = self.guard_exit();
        self.emit(Lir::GuardBoxedEq(callee_sv.id, u64::from(callee_oid.0), e));

        match callee_kind {
            Callee::Scripted(fidx) => {
                let func = FuncId(fidx);
                let f = interp.prog().function(func);
                let nparams = f.nparams as usize;
                let nlocals = f.nlocals as usize;

                // Tail recursion back to the entry anchor closes into a
                // loop: the arguments become loop-carried values and the
                // trace ends with a loop-back (classic TCO — sound because
                // every tail call returns the callee's result unchanged,
                // so no intermediate frame is observable). The entry frame
                // must not be a construct frame: its `this` local doubles
                // as the `new`-fixup value on return.
                if self.anchor.kind == AnchorKind::FuncEntry
                    && !is_construct
                    && self.depth() == 0
                    && func == self.anchor.func
                    && !interp.frame().is_construct
                    && self.frames[0].stack.len() == argc + 2
                    && matches!(
                        interp
                            .prog()
                            .function(self.anchor.func)
                            .code
                            .get(self.pre_pc as usize + 1),
                        Some(Op::Return)
                    )
                {
                    let mut args = Vec::with_capacity(argc);
                    for _ in 0..argc {
                        args.push(self.pop());
                    }
                    args.reverse();
                    let this_sv = self.pop();
                    let _callee = self.pop();
                    self.set_local(0, this_sv);
                    for i in 0..nparams {
                        let sv = if i < args.len() {
                            args[i]
                        } else {
                            self.undefined_sv()
                        };
                        self.set_local(1 + i as u16, sv);
                    }
                    for slot in (1 + nparams)..nlocals {
                        let sv = self.undefined_sv();
                        self.set_local(slot as u16, sv);
                    }
                    self.finish_at_anchor();
                    return Ok(RecordAction::Finished);
                }

                // `SlotKey::Local` carries the frame depth in a u8; never
                // record beyond what exits can describe.
                if self.frames.len() >= MAX_SHADOW_FRAMES {
                    return Err(AbortReason::TooDeep);
                }
                if self.frames.len() >= self.opts.max_inline_depth {
                    if self.anchor.kind == AnchorKind::FuncEntry {
                        // Call-depth-specialized unrolling: end the trace
                        // with a Leave exit at the call op. Resuming
                        // re-executes the call, the interpreter reports the
                        // recursion, and the monitor re-enters this same
                        // entry tree at the deeper frame instead of
                        // aborting the recording.
                        self.finish_leave(self.pre_pc);
                        return Ok(RecordAction::Finished);
                    }
                    return Err(AbortReason::TooDeep);
                }

                // Collect args (top of stack is the last arg).
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(self.pop());
                }
                args.reverse();
                let this_sv = if is_construct {
                    self.record_construct_this(callee_sv, callee_oid, realm)?
                } else {
                    self.pop()
                };
                let _callee = self.pop();

                let caller_resume = self.pre_pc + 1;
                let mut locals: Vec<Option<Sv>> = Vec::with_capacity(nlocals);
                locals.push(Some(this_sv));
                for i in 0..nparams {
                    let sv = if i < args.len() {
                        args[i]
                    } else {
                        self.undefined_sv()
                    };
                    locals.push(Some(sv));
                }
                while locals.len() < nlocals {
                    let sv = self.undefined_sv();
                    locals.push(Some(sv));
                }
                self.frames.push(ShadowFrame {
                    func,
                    locals: Vec::new(), // installed after the AR writes below
                    stack: Vec::new(),
                    is_construct,
                    caller_resume,
                    callee_raw: Value::new_object(callee_oid).raw(),
                });
                // Write every local to the AR so exits inside the callee
                // can synthesize the frame (§3.1: "frame entry and exit
                // LIR saves just enough information to allow the
                // interpreter call stack to be restored").
                let depth = self.depth() as u8;
                for (i, sv) in locals.iter().enumerate() {
                    let sv = sv.expect("initialized");
                    self.write_ar(SlotKey::Local { depth, slot: i as u16 }, sv);
                }
                self.frames.last_mut().expect("frame").locals = locals;
                Ok(RecordAction::Step { observe: false })
            }
            Callee::Native(nid) => {
                if is_construct {
                    return Err(AbortReason::Unsupported);
                }
                let may_reenter = realm.natives[nid as usize].effects.may_reenter;
                if may_reenter {
                    // §6.5 deep-bail paths are not traceable.
                    return Err(AbortReason::Unsupported);
                }
                let fast = realm.natives[nid as usize].fast;
                // Shadow args: [this, args...] above the callee.
                let mut shadow_args = Vec::with_capacity(argc + 1);
                for k in 0..=argc {
                    shadow_args.push(self.peek(argc - k)); // this first
                }
                let call_id = if let Some(fast) = fast {
                    match self.try_fast_native(fast, &shadow_args, argc) {
                        Some(id) => id,
                        None => self.generic_native_call(NativeId(nid), &shadow_args)?,
                    }
                } else {
                    self.generic_native_call(NativeId(nid), &shadow_args)?
                };
                // Pop callee + this + args.
                for _ in 0..argc + 2 {
                    self.pop();
                }
                let pending = if let Some(f) = fast {
                    if self.last_was_fast {
                        PendingNative::Fast(f.helper, f.ret)
                    } else {
                        PendingNative::Generic
                    }
                } else {
                    PendingNative::Generic
                };
                self.pending_native = Some((pending, call_id));
                Ok(RecordAction::Step { observe: true })
            }
        }
    }

    /// Emits the `new.target`-side of a construct: reads the callee's
    /// `prototype` (shape-guarded) and allocates the new object.
    fn record_construct_this(
        &mut self,
        callee_sv: Sv,
        callee_oid: tm_runtime::ObjectId,
        realm: &mut Realm,
    ) -> Result<Sv, AbortReason> {
        let shape = realm.heap.object(callee_oid).shape;
        let slot = realm
            .shapes
            .lookup(shape, realm.sym_prototype)
            .ok_or(AbortReason::Unsupported)?;
        let proto_val = realm.heap.object(callee_oid).slots[slot as usize];
        if !proto_val.is_object() {
            return Err(AbortReason::Unsupported);
        }
        let e = self.guard_exit();
        self.emit(Lir::GuardShape { obj: callee_sv.id, shape: shape.0, exit: e });
        let boxed_proto = self.emit(Lir::LoadSlot(callee_sv.id, slot));
        let e2 = self.guard_exit();
        let proto = self.emit(Lir::UnboxObj(boxed_proto, e2));
        let e3 = self.guard_exit();
        let obj = self.emit(Lir::Call {
            helper: Helper::NewObject,
            args: vec![proto].into_boxed_slice(),
            ret: LirType::Object,
            exit: e3,
        });
        Ok(Sv { id: obj, ty: LirType::Object })
    }

    /// Attempts a typed fast call (§6.5). Returns the call SSA id on
    /// success and sets `last_was_fast`.
    fn try_fast_native(
        &mut self,
        fast: tm_runtime::trace_helpers::FastNative,
        shadow_args: &[Sv],
        argc: usize,
    ) -> Option<u32> {
        self.last_was_fast = false;
        // Figure out which values feed the helper: string methods take the
        // receiver, Math-style functions skip it.
        let takes_receiver = matches!(fast.args.first(), Some(FastTy::Str | FastTy::Obj));
        let vals: Vec<Sv> = if takes_receiver {
            shadow_args.to_vec()
        } else {
            shadow_args[1..].to_vec()
        };
        if vals.len() < fast.args.len() || argc > fast.args.len() {
            return None;
        }
        let mut lir_args = Vec::with_capacity(fast.args.len());
        for (sv, &want) in vals.iter().zip(fast.args.iter()) {
            let id = match (want, sv.ty) {
                (FastTy::Double, LirType::Double) => sv.id,
                (FastTy::Double, LirType::Int | LirType::Bool) => self.emit(Lir::I2D(sv.id)),
                (FastTy::Int, LirType::Int) => sv.id,
                (FastTy::Int, LirType::Double) => {
                    let e = self.guard_exit();
                    self.emit(Lir::D2IChk(sv.id, e))
                }
                (FastTy::Str, LirType::String) => sv.id,
                (FastTy::Obj, LirType::Object) => sv.id,
                _ => return None,
            };
            lir_args.push(id);
        }
        let e = self.guard_exit();
        let ret = match fast.ret {
            FastTy::Double => LirType::Double,
            FastTy::Int => LirType::Int,
            FastTy::Str => LirType::String,
            FastTy::Obj => LirType::Object,
        };
        let id = self.emit(Lir::Call {
            helper: fast.helper,
            args: lir_args.into_boxed_slice(),
            ret,
            exit: e,
        });
        self.last_was_fast = true;
        self.fast_helpers.push(fast.helper);
        Some(id)
    }

    fn generic_native_call(
        &mut self,
        nid: NativeId,
        shadow_args: &[Sv],
    ) -> Result<u32, AbortReason> {
        self.last_was_fast = false;
        if shadow_args.len() > 10 {
            return Err(AbortReason::Unsupported);
        }
        let boxed: Vec<u32> = shadow_args.iter().map(|&sv| self.box_sv(sv)).collect();
        let e = self.guard_exit();
        Ok(self.emit(Lir::Call {
            helper: Helper::CallNative(nid),
            args: boxed.into_boxed_slice(),
            ret: LirType::Boxed,
            exit: e,
        }))
    }

    // ==== nesting (§4) ====

    /// Prepares a nested tree call: snapshots the call-site exit before the
    /// monitor executes the inner tree on the live interpreter state.
    pub fn begin_nested(&mut self, header_pc: u32) {
        let e = self.snapshot_exit(ExitKind::NestedUnexpected, header_pc, None);
        self.pending_nested_exit = Some(e);
    }

    /// Completes a nested call after the monitor ran the inner tree:
    /// records the `CallTree`, registers the site, and invalidates shadow
    /// state the inner tree may have changed.
    pub fn finish_nested(&mut self, inner: TreeId, expected_exit: (u32, u16)) -> u32 {
        let exit = self.pending_nested_exit.take().expect("begin_nested first");
        let local = self.nested_sites.len();
        let site_id = self.nested_site_base + local as u32;
        let callsite = self.exits[exit.0 as usize].clone();
        self.nested_sites.push(NestedSite {
            inner,
            expected_exit,
            reimports: Vec::new(),
            callsite,
            callsite_exit: exit.0,
        });
        self.emit(Lir::CallTree { tree: site_id, exit });
        // Invalidate locals and globals (the inner tree may have written
        // them); operand stacks are unreachable from the inner loop.
        for f in &mut self.frames {
            for l in &mut f.locals {
                *l = None;
            }
        }
        self.globals.clear();
        self.active_site = Some(local);
        site_id
    }

    /// Like [`Recorder::finish_nested`], additionally rebuilding the top
    /// frame's shadow operand stack from the inner tree's exit state (the
    /// inner exit may have left operands, e.g. a loop condition value).
    pub fn finish_nested_with_stack(
        &mut self,
        inner: TreeId,
        expected_exit: (u32, u16),
        stack_depth: u16,
        interp: &Interp,
    ) -> u32 {
        let site = self.finish_nested(inner, expected_exit);
        let depth = self.depth() as u8;
        self.frames.last_mut().expect("frame").stack.clear();
        for idx in 0..stack_depth {
            let key = SlotKey::Stack { depth, idx };
            let v = top_value(interp, (stack_depth - 1 - idx) as usize);
            let sv = self.import_slot(key, Some(v), interp);
            self.frames.last_mut().expect("frame").stack.push(sv);
        }
        site
    }

    /// Abandons a prepared nested call (monitor failed to run the inner
    /// tree); the recording is being aborted anyway.
    pub fn cancel_nested(&mut self) {
        self.pending_nested_exit = None;
    }

    // ==== trace completion ====

    fn finish_leave(&mut self, pc: u32) {
        let e = self.snapshot_exit(ExitKind::LeaveLoop, pc, None);
        self.emit(Lir::End(e));
        self.finish = Some(FinishKind::Leave);
    }

    fn finish_at_anchor(&mut self) {
        // Type-stability analysis (§3.2): compare the loop-edge types of
        // every entry slot with the entry map.
        let entries: Vec<EntrySlot> = self
            .existing_entry
            .iter()
            .chain(self.new_entry.iter())
            .copied()
            .collect();
        let mut unstable = false;
        let mut coerce: Vec<(EntrySlot, Sv)> = Vec::new();
        for e in &entries {
            let cur_ty = self.known.get(&e.ar).map(|&(_, t)| t).unwrap_or(e.ty);
            if cur_ty == e.ty {
                continue;
            }
            if e.ty == LirType::Double && cur_ty == LirType::Int {
                // An int flowed into a double slot: widen at the edge.
                if let Some(sv) = self.current_sv_for(e.key) {
                    coerce.push((*e, sv));
                    continue;
                }
            }
            unstable = true;
            if e.ty == LirType::Int && cur_ty == LirType::Double {
                // Integer mis-speculation: inform the oracle (§3.2).
                let funcs: Vec<FuncId> = self.frames.iter().map(|f| f.func).collect();
                if let Some(vk) = var_key(e.key, &funcs) {
                    self.oracle_marks.push(vk);
                }
            }
        }
        for (e, sv) in coerce {
            let d = self.emit(Lir::I2D(sv.id));
            self.write_ar(e.key, Sv { id: d, ty: LirType::Double });
        }
        if unstable {
            let e = self.snapshot_exit(ExitKind::Unstable, self.anchor.pc, None);
            self.emit(Lir::End(e));
            self.finish = Some(FinishKind::UnstableLoop);
        } else {
            // The trace loops: values written to globals / entry-frame
            // locals persist in the AR across iterations, so (a) they must
            // be entry-populated (first iteration would otherwise read or
            // write back garbage), and (b) *every* exit must write them
            // back (an exit on iteration k may be reached after the write
            // happened on iteration k-1).
            let mut loop_writes: Vec<(ArSlot, SlotKey, LirType)> = Vec::new();
            for (&ar, &(key, ty)) in &self.written {
                if matches!(key, SlotKey::Global(_) | SlotKey::Local { depth: 0, .. }) {
                    loop_writes.push((ar, key, ty));
                    // Must be a *tree entry* slot (populated on every
                    // entry): the entry_types map also contains parent-path
                    // imports that are not entry slots, so check the entry
                    // lists themselves.
                    let is_entry = self.existing_entry.iter().any(|e| e.key == key)
                        || self.new_entry.iter().any(|e| e.key == key);
                    if !is_entry {
                        self.entry_types.insert(key, ty);
                        self.new_entry.push(EntrySlot { ar, key, ty });
                    }
                }
            }
            loop_writes.sort_by_key(|&(ar, _, _)| ar);
            self.loop_writes = loop_writes;
            let e = self.snapshot_exit(ExitKind::LoopEdge, self.anchor.pc, None);
            self.emit(Lir::LoopBack(e));
            for exit in &mut self.exits {
                union_writes(&mut exit.write_back, &self.loop_writes);
                union_writes(&mut exit.typemap, &self.loop_writes);
            }
            self.finish = Some(FinishKind::StableLoop);
        }
    }

    fn current_sv_for(&self, key: SlotKey) -> Option<Sv> {
        match key {
            SlotKey::Global(g) => self.globals.get(&g).copied(),
            SlotKey::Local { depth, slot } => self
                .frames
                .get(depth as usize)
                .and_then(|f| f.locals.get(slot as usize).copied().flatten()),
            SlotKey::Stack { .. } | SlotKey::Reimport { .. } => None,
        }
    }

    /// Consumes the recorder, producing the finished trace.
    ///
    /// # Panics
    ///
    /// Panics if recording did not finish (no `Finished` action).
    pub fn into_recorded(mut self) -> RecordedTrace {
        let finish = self.finish.expect("recording not finished");
        // Loop-write unioning may have grown the exits' write-back sets;
        // refresh the nested call sites' state-transfer recipes.
        for site in &mut self.nested_sites {
            site.callsite = self.exits[site.callsite_exit as usize].clone();
        }
        let loop_live: Vec<ArSlot> = self
            .existing_entry
            .iter()
            .chain(self.new_entry.iter())
            .map(|e| e.ar)
            .collect();
        RecordedTrace {
            lir: self.buf.into_trace(),
            exits: self.exits,
            new_entry: self.new_entry,
            layout: self.layout,
            bytecodes: self.ops_recorded,
            finish,
            oracle_marks: self.oracle_marks,
            nested_sites: self.nested_sites,
            loop_live,
            loop_writes: self.loop_writes,
            fast_helpers: self.fast_helpers,
        }
    }

}

#[derive(Debug, Clone, Copy)]
enum ArithKind {
    Sub,
    Mul,
    Mod,
}

#[derive(Debug, Clone, Copy)]
enum BitKind {
    And,
    Or,
    Xor,
    Shl,
    Shr,
    UShr,
}

#[derive(Debug, Clone, Copy)]
enum RelKind {
    Lt,
    Le,
    Gt,
    Ge,
}

/// Reads the interpreter operand `from_top` entries below the top.
fn top_value(interp: &Interp, from_top: usize) -> Value {
    let ops = interp.operands();
    ops[ops.len() - 1 - from_top]
}

fn mul_is_neg_zero(realm: &Realm, a: Value, b: Value) -> bool {
    let x = rt_ops::to_number(realm, a);
    let y = rt_ops::to_number(realm, b);
    x * y == 0.0 && (x * y).is_sign_negative()
}

fn mod_stays_int(realm: &Realm, a: Value, b: Value) -> bool {
    let x = rt_ops::to_number(realm, a);
    let y = rt_ops::to_number(realm, b);
    if y == 0.0 {
        return false;
    }
    let r = x % y;
    r == r.trunc() && Value::fits_int(r as i64) && !(r == 0.0 && x < 0.0)
}

fn bitnot_value(realm: &Realm, a: Value) -> i64 {
    i64::from(!rt_ops::to_int32(realm, a))
}

/// Adds loop-persistent writes missing from an exit's slot list (existing
/// entries keep their more precise per-exit types).
pub(crate) fn union_writes(
    list: &mut Vec<(ArSlot, SlotKey, LirType)>,
    extra: &[(ArSlot, SlotKey, LirType)],
) {
    for &(ar, key, ty) in extra {
        if !list.iter().any(|&(a, _, _)| a == ar) {
            list.push((ar, key, ty));
        }
    }
    list.sort_by_key(|&(ar, _, _)| ar);
}
