//! Tracing JIT configuration.

use tm_lir::FilterOptions;

use crate::blacklist::BlacklistConfig;

/// Tunables of the tracing JIT. Defaults follow the paper's reported
/// constants (hotness 2, side-exit hotness 2, blacklist after 2 failures
/// with a 32-pass backoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitOptions {
    /// Loop-edge crossings before a loop is considered hot (paper: 2).
    pub hotness_threshold: u32,
    /// Side-exit passes before a branch trace is recorded (paper-narrative:
    /// the second taking of an exit makes it hot).
    pub hot_exit_threshold: u32,
    /// Blacklisting policy (§3.3).
    pub blacklist: BlacklistConfig,
    /// Forward filter configuration (§5.1).
    pub filters: FilterOptions,
    /// Abort recording beyond this many LIR instructions.
    pub max_trace_len: usize,
    /// Maximum function-inlining depth on trace.
    pub max_inline_depth: usize,
    /// Maximum fragments per tree (bounds code-cache growth).
    pub max_fragments_per_tree: usize,
    /// Disable a tree when, after `useless_probation` entries, its average
    /// native bytecodes per call stays below this (the paper's §3.3
    /// "short loop body" mitigation, proposed there as future work).
    pub min_useful_bytecodes: u64,
    /// Entries before the useless-tree check applies.
    pub useless_probation: u64,
    /// Record nested trace trees (§4); off = the naive behaviour of
    /// aborting on inner loops.
    pub enable_nesting: bool,
    /// Patch side exits to jump directly to branch fragments (§6.2); off =
    /// every exit returns through the monitor.
    pub enable_stitching: bool,
    /// Consult the integer-demotion oracle (§3.2).
    pub enable_oracle: bool,
    /// Link type-unstable sibling trees through the monitor (Figure 6).
    pub enable_stability_linking: bool,
    /// Collect per-activity wall-clock times (Figure 12).
    pub profile: bool,
    /// Record trace events (tests / diagnostics).
    pub log_events: bool,
    /// Statically verify every recorded trace before compiling it
    /// (`tm-verifier`): a malformed trace aborts recording with
    /// `AbortReason::VerifyFailed` instead of being compiled. On by
    /// default in debug/test builds, off in release (hot-path) builds.
    /// When on, compiled fragments are additionally re-verified after the
    /// superinstruction pass (`tm-verifier::verify_fragment`).
    pub verify: bool,
    /// Run the peephole superinstruction pass (`tm-nanojit::fuse`) on
    /// every compiled fragment. On by default; turning it off executes
    /// the raw assembled code (the `bench_pr5` baseline configuration).
    pub enable_fusion: bool,
    /// Hand finished recordings to the attached background compiler pool
    /// (`Vm::attach_pool`) instead of compiling on the execution thread;
    /// the compiled tree is installed at the next anchor hit. Off by
    /// default (and a no-op without an attached pool): single-realm runs
    /// keep the paper's synchronous compile-on-record semantics.
    pub background_compile: bool,
    /// Execute trace trees through the native x86-64 backend
    /// (`tm-nanojit::x64`) when the tree's fragments are fully
    /// translatable; trees with untranslatable ops (heap access, helper
    /// calls, nested trees) fall back per-tree to the decoded executor,
    /// which remains the portable reference. On by default where the
    /// backend exists (x86-64 Linux) so the whole suite runs the native
    /// tier differentially; forced off elsewhere — enabling it on an
    /// unsupported target silently degrades to the decoded executor.
    pub native_backend: bool,
}

impl Default for JitOptions {
    fn default() -> Self {
        JitOptions {
            hotness_threshold: 2,
            hot_exit_threshold: 2,
            blacklist: BlacklistConfig::default(),
            filters: FilterOptions::default(),
            max_trace_len: 2048,
            max_inline_depth: 8,
            max_fragments_per_tree: 32,
            min_useful_bytecodes: 120,
            useless_probation: 64,
            enable_nesting: true,
            enable_stitching: true,
            enable_oracle: true,
            enable_stability_linking: true,
            profile: false,
            log_events: false,
            verify: cfg!(debug_assertions),
            enable_fusion: true,
            background_compile: false,
            native_backend: cfg!(all(target_arch = "x86_64", target_os = "linux")),
        }
    }
}
