//! Trace trees and the trace cache (§3.2, §6.1).
//!
//! A [`TraceTree`] is a single-entry, multiple-exit collection of compiled
//! fragments sharing one activation-record layout: fragment 0 is the trunk
//! trace, later fragments are branch traces attached by stitching.
//! "Compiled traces are stored in a trace cache, indexed by interpreter PC
//! and type map" — [`TreeCache`] keeps, per loop-header PC, the list of
//! sibling trees (one per entry type map; several when the loop is
//! type-unstable, Figure 6).

use std::collections::HashMap;

use tm_bytecode::{FuncId, LoopId};
use tm_lir::{ArSlot, LirType};
use tm_nanojit::Fragment;
use tm_runtime::{Realm, Value};

use std::sync::Arc;

use crate::activation::{value_matches, ArLayout, SlotKey};
use crate::exit::SideExitInfo;

/// Identifies a tree in the [`TreeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeId(pub u32);

/// What kind of program point a trace tree anchors at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnchorKind {
    /// A `LoopHeader` op — the paper's loop anchors.
    LoopHeader,
    /// A function entry (pc 0), used to trace recursion: tail recursion
    /// closes into a loop at the entry, downward recursion unrolls to the
    /// inline-depth budget and re-enters the monitor at the deeper frame.
    FuncEntry,
}

/// A trace anchor: a loop header or a function entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Anchor {
    /// Function containing the anchor.
    pub func: FuncId,
    /// Instruction index of the `LoopHeader` op (loop anchors) or 0
    /// (function-entry anchors).
    pub pc: u32,
    /// The dense index into the monitor's per-function slot table: the
    /// loop's id for loop anchors, or one past the function's last loop id
    /// for the (single) entry anchor. Fully determined by `(func, pc, kind)`.
    pub loop_id: LoopId,
    /// Loop header or function entry.
    pub kind: AnchorKind,
}

impl Anchor {
    /// A loop-header anchor.
    pub fn loop_header(func: FuncId, pc: u32, loop_id: LoopId) -> Anchor {
        Anchor { func, pc, loop_id, kind: AnchorKind::LoopHeader }
    }

    /// The function-entry anchor of `func`, where `nloops` is the number
    /// of loops in `func` (the entry anchor uses the slot just past them).
    pub fn func_entry(func: FuncId, nloops: usize) -> Anchor {
        Anchor {
            func,
            pc: 0,
            loop_id: LoopId(nloops as u16),
            kind: AnchorKind::FuncEntry,
        }
    }

    /// Blacklist site key. Entry anchors use a sentinel pc so they never
    /// collide with a real loop header at pc 0.
    pub fn site_key(&self) -> (FuncId, u32) {
        match self.kind {
            AnchorKind::LoopHeader => (self.func, self.pc),
            AnchorKind::FuncEntry => (self.func, ENTRY_SITE_PC),
        }
    }
}

/// Sentinel pc used as the blacklist key of function-entry anchors.
pub const ENTRY_SITE_PC: u32 = u32::MAX;

/// Per-side-exit monitor state, stored densely parallel to
/// [`TraceTree::exits`] — a bounds-checked array access on the hot
/// exit-handling path where three `HashMap<(u32, u16), u32>`s used to be.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExitState {
    /// Hotness counter toward branch recording (§3.2: hot side exits grow
    /// the tree). Reset when the exit is blacklisted so long-running
    /// processes don't accumulate dead counters.
    pub counter: u32,
    /// Branch-recording failures at this exit; at the blacklist threshold
    /// the exit is never extended again.
    pub failures: u32,
    /// Attached branch fragment, if any (used for monitor-mediated branch
    /// calls when stitching is disabled, and to avoid re-recording).
    pub branch: Option<u32>,
}

/// One entry-type-map slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntrySlot {
    /// AR slot populated at entry.
    pub ar: ArSlot,
    /// Interpreter location it shadows.
    pub key: SlotKey,
    /// Required unboxed type.
    pub ty: LirType,
}

/// A nested-tree call site recorded in an outer trace (§4.1).
#[derive(Debug, Clone)]
pub struct NestedSite {
    /// The inner tree called.
    pub inner: TreeId,
    /// The (fragment, exit) the inner tree is expected to take — the
    /// "return to the same point every time" guard of §4.1.
    pub expected_exit: (u32, u16),
    /// Outer AR slots to refresh from interpreter state after the call,
    /// with the types the outer trace re-imports them at.
    pub reimports: Vec<(ArSlot, SlotKey, LirType)>,
    /// State-transfer recipe for the call site: how the nesting host syncs
    /// the outer AR into interpreter state before entering the inner tree.
    pub callsite: SideExitInfo,
    /// The exit id the call site snapshot came from (used to refresh the
    /// recipe after loop-write unioning).
    pub callsite_exit: u16,
}

/// Execution statistics for a tree.
#[derive(Debug, Default, Clone, Copy)]
pub struct TreeStats {
    /// Times entered from the monitor.
    pub enters: u64,
    /// Loop-edge crossings executed natively.
    pub iterations: u64,
    /// Side exits taken back to the monitor.
    pub monitor_exits: u64,
}

/// A compiled trace tree.
#[derive(Debug)]
pub struct TraceTree {
    /// The tree's id in the cache.
    pub id: TreeId,
    /// Loop header this tree anchors at.
    pub anchor: Anchor,
    /// Activation-record layout shared by all fragments.
    pub layout: ArLayout,
    /// Entry type map: slots the monitor populates (and checks) on entry.
    pub entry: Vec<EntrySlot>,
    /// Compiled fragments; `[0]` is the trunk. Shared so the executor can
    /// run them while the monitor (the nesting host) stays borrowable.
    pub fragments: Arc<Vec<Fragment>>,
    /// Side-exit descriptors, per fragment, indexed by exit id.
    pub exits: Vec<Vec<SideExitInfo>>,
    /// Bytecodes covered by each fragment (Figure 11 accounting).
    pub fragment_bytecodes: Vec<u32>,
    /// Monitor state per side exit (hotness, failures, attached branch),
    /// parallel to [`TraceTree::exits`].
    pub exit_states: Vec<Vec<ExitState>>,
    /// Per-fragment entry requirements: the AR slots (with types) that must
    /// be populated to enter execution at that fragment from the monitor.
    pub frag_entry_reqs: Vec<Vec<(ArSlot, SlotKey, LirType)>>,
    /// Nested call sites embedded in this tree's fragments.
    pub nested_sites: Vec<NestedSite>,
    /// Loop-persistent writes across all stable fragments: every exit must
    /// write these back.
    pub loop_writes: Vec<(ArSlot, SlotKey, LirType)>,
    /// Final (backward-filtered) LIR per fragment, retained when
    /// `JitOptions::log_events` is set — diagnostics and golden tests read
    /// the exact IR the backend compiled.
    pub lir: Vec<tm_lir::LirTrace>,
    /// Whether the trunk ends type-unstable (`End` instead of `LoopBack`).
    pub unstable: bool,
    /// Disabled trees are never entered (the §3.3 short-loop mitigation:
    /// calling them costs more than interpreting).
    pub disabled: bool,
    /// Execution statistics.
    pub stats: TreeStats,
}

impl TreeStats {
    /// Native bytecodes attributed to this tree (Figure 11 accounting).
    pub fn native_bytecodes(&self, trunk_bc: u32) -> u64 {
        self.iterations * u64::from(trunk_bc)
    }
}

impl TraceTree {
    /// Monitor state for exit `(frag, exit)`.
    #[inline]
    pub fn exit_state(&self, frag: u32, exit: u16) -> &ExitState {
        &self.exit_states[frag as usize][exit as usize]
    }

    /// Mutable monitor state for exit `(frag, exit)`.
    #[inline]
    pub fn exit_state_mut(&mut self, frag: u32, exit: u16) -> &mut ExitState {
        &mut self.exit_states[frag as usize][exit as usize]
    }

    /// Reads the current interpreter-visible value for an entry key.
    /// Returns `None` for keys that are not observable at a loop header
    /// (they never appear in entry maps).
    pub fn read_entry_value(
        realm: &Realm,
        interp: &tm_interp::Interp,
        key: SlotKey,
    ) -> Option<Value> {
        match key {
            SlotKey::Global(g) => Some(realm.global(g)),
            SlotKey::Local { depth: 0, slot } => Some(interp.local(slot)),
            _ => None,
        }
    }

    /// Whether the current interpreter state matches this tree's entry
    /// type map.
    pub fn entry_matches(&self, realm: &Realm, interp: &tm_interp::Interp) -> bool {
        self.entry.iter().all(|e| {
            TraceTree::read_entry_value(realm, interp, e.key)
                .is_some_and(|v| value_matches(realm, v, e.ty))
        })
    }
}

/// The trace cache: all compiled trees, indexed by anchor.
#[derive(Debug, Default)]
pub struct TreeCache {
    trees: Vec<TraceTree>,
    by_anchor: HashMap<Anchor, Vec<TreeId>>,
}

impl TreeCache {
    /// Creates an empty cache.
    pub fn new() -> TreeCache {
        TreeCache::default()
    }

    /// Registers a new tree, returning its id.
    pub fn insert(&mut self, mut tree: TraceTree) -> TreeId {
        let id = TreeId(self.trees.len() as u32);
        tree.id = id;
        self.by_anchor.entry(tree.anchor).or_default().push(id);
        self.trees.push(tree);
        id
    }

    /// The tree with the given id.
    pub fn tree(&self, id: TreeId) -> &TraceTree {
        &self.trees[id.0 as usize]
    }

    /// Mutable access to a tree.
    pub fn tree_mut(&mut self, id: TreeId) -> &mut TraceTree {
        &mut self.trees[id.0 as usize]
    }

    /// All sibling trees anchored at `anchor`.
    pub fn trees_at(&self, anchor: Anchor) -> &[TreeId] {
        self.by_anchor.get(&anchor).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Finds a tree at `anchor` whose entry type map matches the current
    /// interpreter state — the trace-cache lookup of §6.1.
    pub fn find_match(
        &self,
        anchor: Anchor,
        realm: &Realm,
        interp: &tm_interp::Interp,
    ) -> Option<TreeId> {
        self.trees_at(anchor)
            .iter()
            .copied()
            .find(|&id| !self.tree(id).disabled && self.tree(id).entry_matches(realm, interp))
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Iterates over all trees.
    pub fn iter(&self) -> impl Iterator<Item = &TraceTree> {
        self.trees.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with_entry(entry: Vec<EntrySlot>) -> TraceTree {
        TraceTree {
            id: TreeId(0),
            anchor: Anchor::loop_header(FuncId(0), 3, LoopId(0)),
            layout: ArLayout::new(),
            entry,
            fragments: Arc::new(vec![]),
            exits: vec![],
            fragment_bytecodes: vec![],
            exit_states: vec![],
            frag_entry_reqs: vec![],
            nested_sites: vec![],
            loop_writes: vec![],
            lir: vec![],
            unstable: false,
            disabled: false,
            stats: TreeStats::default(),
        }
    }

    fn setup() -> (Realm, tm_interp::Interp) {
        let ast = tm_frontend::parse("var g = 1; var x = 0;").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = tm_interp::Interp::new(prog, &mut realm);
        let _ = interp.run(&mut realm).unwrap();
        interp.reset();
        (realm, interp)
    }

    #[test]
    fn entry_matching_against_interp_state() {
        let (mut realm, interp) = setup();
        let g = realm.lookup_global("g").unwrap();
        realm.set_global(g, Value::new_int(5));

        let t_int = tree_with_entry(vec![EntrySlot {
            ar: 0,
            key: SlotKey::Global(g),
            ty: LirType::Int,
        }]);
        assert!(t_int.entry_matches(&realm, &interp));

        let d = realm.heap.alloc_double(0.5);
        realm.set_global(g, d);
        assert!(!t_int.entry_matches(&realm, &interp), "double does not match Int entry");

        let t_dbl = tree_with_entry(vec![EntrySlot {
            ar: 0,
            key: SlotKey::Global(g),
            ty: LirType::Double,
        }]);
        assert!(t_dbl.entry_matches(&realm, &interp));
    }

    #[test]
    fn cache_finds_first_matching_sibling() {
        let (mut realm, interp) = setup();
        let g = realm.lookup_global("g").unwrap();
        realm.set_global(g, Value::new_int(5));

        let mut cache = TreeCache::new();
        let anchor = Anchor::loop_header(FuncId(0), 3, LoopId(0));
        let t_dbl = tree_with_entry(vec![EntrySlot {
            ar: 0,
            key: SlotKey::Global(g),
            ty: LirType::Undefined,
        }]);
        let id_a = cache.insert(t_dbl);
        let t_int = tree_with_entry(vec![EntrySlot {
            ar: 0,
            key: SlotKey::Global(g),
            ty: LirType::Int,
        }]);
        let id_b = cache.insert(t_int);

        assert_eq!(cache.trees_at(anchor), &[id_a, id_b]);
        assert_eq!(cache.find_match(anchor, &realm, &interp), Some(id_b));
        realm.set_global(g, Value::UNDEFINED);
        assert_eq!(cache.find_match(anchor, &realm, &interp), Some(id_a));
        assert_eq!(cache.len(), 2);
    }
}
