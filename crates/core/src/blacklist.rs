//! Blacklisting and backoff (§3.3, §4.2).
//!
//! Recording failures are counted per fragment start (loop header or side
//! exit). After a failure the fragment *backs off* — the monitor ignores it
//! for a number of passes — and after enough failures it is permanently
//! blacklisted: for loop headers the bytecode `LoopHeader` op is patched to
//! a `Nop` so the interpreter never calls the monitor again.
//!
//! Nested-loop forgiveness (§4.2): when an outer recording aborts because
//! an inner tree was not ready, the abort is provisional — once the inner
//! tree finishes a trace, the outer fragment's failure count is decremented
//! and its backoff undone.

use std::collections::HashMap;

use tm_bytecode::FuncId;

/// A fragment start position: a loop header or a side-exit location.
pub type FragmentStart = (FuncId, u32);

/// Per-fragment failure bookkeeping.
#[derive(Debug, Default, Clone, Copy)]
struct Entry {
    failures: u32,
    /// Remaining passes to skip before trying again.
    backoff: u32,
    blacklisted: bool,
    /// Failures attributable to an inner tree not being ready, eligible
    /// for forgiveness.
    provisional: u32,
}

/// Blacklist policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlacklistConfig {
    /// Failures before permanent blacklisting (paper: 2).
    pub max_failures: u32,
    /// Passes to skip after a failure (paper: 32).
    pub backoff: u32,
    /// Whether blacklisting is enabled at all (ablation).
    pub enabled: bool,
}

impl Default for BlacklistConfig {
    fn default() -> Self {
        BlacklistConfig { max_failures: 2, backoff: 32, enabled: true }
    }
}

/// The durable part of one blacklist entry, as stored in the persistent
/// trace cache (`docs/PERSISTENCE.md` §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedEntry {
    /// The fragment start the entry describes.
    pub start: FragmentStart,
    /// Accumulated recording failures.
    pub failures: u32,
    /// Whether the fragment is permanently blacklisted.
    pub blacklisted: bool,
}

/// What the monitor should do at a fragment start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Try recording.
    Record,
    /// Skip this pass (backing off).
    Skip,
    /// Permanently blacklisted; for loop headers, patch the bytecode.
    Blacklisted,
}

/// The blacklist table.
#[derive(Debug, Default)]
pub struct Blacklist {
    entries: HashMap<FragmentStart, Entry>,
    config: BlacklistConfig,
}

impl Blacklist {
    /// Creates a blacklist with the given policy.
    pub fn new(config: BlacklistConfig) -> Blacklist {
        Blacklist { entries: HashMap::new(), config }
    }

    /// Consults the table before attempting to record at `start`,
    /// consuming one backoff credit when backing off.
    pub fn check(&mut self, start: FragmentStart) -> Verdict {
        if !self.config.enabled {
            return Verdict::Record;
        }
        let e = self.entries.entry(start).or_default();
        if e.blacklisted {
            Verdict::Blacklisted
        } else if e.backoff > 0 {
            e.backoff -= 1;
            Verdict::Skip
        } else {
            Verdict::Record
        }
    }

    /// Records a recording failure at `start`. `inner_not_ready` marks the
    /// failure provisional (§4.2). Returns `true` when the fragment just
    /// became blacklisted.
    pub fn record_failure(&mut self, start: FragmentStart, inner_not_ready: bool) -> bool {
        if !self.config.enabled {
            return false;
        }
        let max_failures = self.config.max_failures;
        let backoff = self.config.backoff;
        let e = self.entries.entry(start).or_default();
        e.failures += 1;
        if inner_not_ready {
            e.provisional += 1;
        }
        if e.failures >= max_failures {
            e.blacklisted = true;
            return true;
        }
        e.backoff = backoff;
        false
    }

    /// Forgives one provisional failure on every fragment inside
    /// `outer_range` of `func` — called when an inner tree finishes a trace
    /// ("when the inner tree finishes a trace, we decrement the blacklist
    /// counter on the outer loop ... we also undo the backoff").
    pub fn forgive_outer(&mut self, func: FuncId, outer_headers: &[u32]) {
        if !self.config.enabled {
            return;
        }
        for &pc in outer_headers {
            if let Some(e) = self.entries.get_mut(&(func, pc)) {
                if e.provisional > 0 && !e.blacklisted {
                    e.provisional -= 1;
                    e.failures = e.failures.saturating_sub(1);
                    e.backoff = 0;
                }
            }
        }
    }

    /// Snapshots every entry in a deterministic (sorted) order for the
    /// persistent trace cache. Transient backoff is *not* exported — a
    /// fresh process restarts its pass counting — only the durable facts:
    /// accumulated failures and the blacklisted bit.
    pub fn export(&self) -> Vec<PersistedEntry> {
        let mut out: Vec<PersistedEntry> = self
            .entries
            .iter()
            .filter(|(_, e)| e.failures > 0 || e.blacklisted)
            .map(|(&start, e)| PersistedEntry { start, failures: e.failures, blacklisted: e.blacklisted })
            .collect();
        out.sort_by_key(|p| (p.start.0 .0, p.start.1));
        out
    }

    /// Merges a previously [`Blacklist::export`]ed snapshot back in,
    /// keeping the worse of the stored and current failure counts.
    ///
    /// A restored failure that did not reach the blacklist threshold is
    /// re-armed with an effectively infinite backoff: a previous process
    /// already proved recording there unprofitable, and a warm start must
    /// not repay the aborted-recording cost it was created to avoid (the
    /// cache's zero-recordings-when-warm guarantee). Deleting the cache
    /// file restores cold-start adaptivity.
    pub fn restore(&mut self, persisted: &[PersistedEntry]) {
        if !self.config.enabled {
            return;
        }
        for p in persisted {
            let e = self.entries.entry(p.start).or_default();
            e.failures = e.failures.max(p.failures);
            e.blacklisted |= p.blacklisted;
            if !e.blacklisted && e.failures > 0 {
                e.backoff = u32::MAX;
            }
        }
    }

    /// Whether `start` is permanently blacklisted.
    pub fn is_blacklisted(&self, start: FragmentStart) -> bool {
        self.entries.get(&start).is_some_and(|e| e.blacklisted)
    }

    /// Number of blacklisted fragments (diagnostics).
    pub fn blacklisted_count(&self) -> usize {
        self.entries.values().filter(|e| e.blacklisted).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const START: FragmentStart = (FuncId(0), 5);

    #[test]
    fn failure_backoff_then_blacklist() {
        let mut bl = Blacklist::new(BlacklistConfig { max_failures: 2, backoff: 3, enabled: true });
        assert_eq!(bl.check(START), Verdict::Record);
        assert!(!bl.record_failure(START, false));
        // Backing off for 3 passes.
        assert_eq!(bl.check(START), Verdict::Skip);
        assert_eq!(bl.check(START), Verdict::Skip);
        assert_eq!(bl.check(START), Verdict::Skip);
        assert_eq!(bl.check(START), Verdict::Record);
        // Second failure: permanent.
        assert!(bl.record_failure(START, false));
        assert_eq!(bl.check(START), Verdict::Blacklisted);
        assert!(bl.is_blacklisted(START));
        assert_eq!(bl.blacklisted_count(), 1);
    }

    #[test]
    fn forgiveness_undoes_provisional_failures() {
        let mut bl = Blacklist::new(BlacklistConfig { max_failures: 2, backoff: 32, enabled: true });
        assert!(!bl.record_failure(START, true));
        assert_eq!(bl.check(START), Verdict::Skip);
        // Inner tree completed: outer is forgiven and retried immediately.
        bl.forgive_outer(FuncId(0), &[5]);
        assert_eq!(bl.check(START), Verdict::Record);
        // The forgiven failure no longer counts towards blacklisting.
        assert!(!bl.record_failure(START, false));
        assert!(!bl.is_blacklisted(START));
    }

    #[test]
    fn single_failure_threshold_blacklists_immediately() {
        let mut bl =
            Blacklist::new(BlacklistConfig { max_failures: 1, backoff: 32, enabled: true });
        assert_eq!(bl.check(START), Verdict::Record);
        // With the threshold at one there is no backoff phase at all.
        assert!(bl.record_failure(START, false));
        assert_eq!(bl.check(START), Verdict::Blacklisted);
        assert_eq!(bl.blacklisted_count(), 1);
    }

    #[test]
    fn forgiveness_does_not_resurrect_blacklisted_fragments() {
        let mut bl =
            Blacklist::new(BlacklistConfig { max_failures: 1, backoff: 2, enabled: true });
        assert!(bl.record_failure(START, true));
        // Even though the failure was provisional, blacklisting is final.
        bl.forgive_outer(FuncId(0), &[5]);
        assert_eq!(bl.check(START), Verdict::Blacklisted);
        assert!(bl.is_blacklisted(START));
    }

    #[test]
    fn forgiveness_only_covers_provisional_failures() {
        let mut bl =
            Blacklist::new(BlacklistConfig { max_failures: 3, backoff: 4, enabled: true });
        assert!(!bl.record_failure(START, false)); // a real abort, not inner-not-ready
        bl.forgive_outer(FuncId(0), &[5]);
        // Nothing was provisional: the failure stands and the backoff holds.
        assert_eq!(bl.check(START), Verdict::Skip);
    }

    #[test]
    fn fragments_fail_independently() {
        let mut bl =
            Blacklist::new(BlacklistConfig { max_failures: 2, backoff: 2, enabled: true });
        let other: FragmentStart = (FuncId(1), 9);
        assert!(!bl.record_failure(START, false));
        assert_eq!(bl.check(START), Verdict::Skip);
        // The other fragment is unaffected by START's backoff...
        assert_eq!(bl.check(other), Verdict::Record);
        // ...and blacklists on its own count.
        bl.record_failure(other, false);
        bl.record_failure(other, false);
        assert!(bl.is_blacklisted(other));
        assert!(!bl.is_blacklisted(START));
        assert_eq!(bl.blacklisted_count(), 1);
    }

    #[test]
    fn disabled_blacklist_always_records() {
        let mut bl = Blacklist::new(BlacklistConfig { enabled: false, ..Default::default() });
        for _ in 0..10 {
            bl.record_failure(START, false);
        }
        assert_eq!(bl.check(START), Verdict::Record);
        assert!(!bl.is_blacklisted(START));
    }
}
