//! The persistent trace cache: warm-starting the JIT across processes.
//!
//! A cold process pays the full Figure-2 warm-up cost — interpret, count
//! hotness, record, compile — before any loop runs natively. This module
//! serializes the monitor's durable state (compiled trace trees, the
//! integer-demotion oracle, the blacklist, silenced anchors) to a compact
//! little-endian binary file, and reloads it at the start of a later run
//! of the *same program*, skipping warm-up entirely.
//!
//! The on-disk format is specified normatively in `docs/PERSISTENCE.md`;
//! this module is its reference implementation. The safety story, in one
//! paragraph: a cache entry is keyed by a checksum of the compiled
//! bytecode program and guarded by a fingerprint of the realm as it stood
//! at install time (the point right after compilation, where a warm
//! process loads). A loaded entry is fully decoded and structurally
//! validated, its shape references are resolved by *property-name path*
//! (not by raw id) against the live shape tree, and every fragment must
//! pass `tm-verifier::verify_loaded_fragments` before anything is
//! installed. Any mismatch, truncation, bit flip, or version skew rejects
//! the entry — counted in [`crate::profiler::ProfileStats`] — and the run
//! degrades to an ordinary cold start. Loaded code is never executed
//! unverified, and a corrupt cache never aborts the VM.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tm_bytecode::{FuncId, LoopId, Program};
use tm_interp::Interp;
use tm_lir::{ArSlot, LirType};
use tm_nanojit::serial::{decode_fragment, encode_fragment};
use tm_nanojit::{Fragment, MachInst};
use tm_runtime::{Realm, ShapeId};
use tm_support::{fnv1a64, BinError, ByteReader, ByteWriter, Fnv1a64};

use crate::activation::{ArLayout, SlotKey};
use crate::blacklist::PersistedEntry;
use crate::exit::{ExitKind, FrameDesc, SideExitInfo};
use crate::monitor::Monitor;
use crate::oracle::{Site, VarKey};
use crate::tree::{
    Anchor, AnchorKind, EntrySlot, ExitState, NestedSite, TraceTree, TreeStats,
};

/// File magic: the first four bytes of every trace-cache file.
pub const MAGIC: [u8; 4] = *b"TMTC";

/// Current format version. Readers reject any other value (there is no
/// cross-version migration: a cache is a regenerable artifact, so version
/// skew simply degrades to a cold start).
pub const VERSION: u32 = 1;

/// Why a cache file or entry was rejected. Every variant degrades to a
/// cold start; none is fatal to the VM.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// The file could not be read or written.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`VERSION`].
    BadVersion {
        /// The version found in the file header.
        found: u32,
    },
    /// A structural decoding failure (truncation, bad tag, hostile
    /// length) anywhere in the file.
    Corrupt(BinError),
    /// An entry's trailing FNV-1a checksum did not match its body.
    ChecksumMismatch,
    /// The realm at load time differs from the realm the entry was
    /// installed against.
    FingerprintMismatch {
        /// Fingerprint stored in the entry.
        stored: u64,
        /// Fingerprint of the live realm.
        current: u64,
    },
    /// A guarded shape's stored property path conflicts with the live
    /// shape tree and cannot be remapped.
    ShapeConflict {
        /// The stored shape id.
        id: u32,
    },
    /// A decoded tree failed semantic validation against the running
    /// program.
    BadTree(String),
    /// A loaded fragment failed `tm-verifier` re-verification.
    VerifyFailed {
        /// Index of the offending tree within the entry.
        tree: u32,
        /// Index of the offending fragment within the tree.
        fragment: usize,
        /// The verifier's error, rendered.
        error: String,
    },
    /// The monitor already holds trees; loading is only defined into a
    /// cold (empty) trace cache.
    NotCold,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache i/o error: {e}"),
            CacheError::BadMagic => write!(f, "not a trace-cache file (bad magic)"),
            CacheError::BadVersion { found } => {
                write!(f, "unsupported cache version {found} (expected {VERSION})")
            }
            CacheError::Corrupt(e) => write!(f, "corrupt cache file: {e}"),
            CacheError::ChecksumMismatch => write!(f, "cache entry checksum mismatch"),
            CacheError::FingerprintMismatch { stored, current } => write!(
                f,
                "realm fingerprint mismatch (stored {stored:#018x}, current {current:#018x})"
            ),
            CacheError::ShapeConflict { id } => {
                write!(f, "shape id {id} conflicts with the live shape tree")
            }
            CacheError::BadTree(msg) => write!(f, "invalid cached tree: {msg}"),
            CacheError::VerifyFailed { tree, fragment, error } => {
                write!(f, "verifier rejected loaded tree {tree} fragment {fragment}: {error}")
            }
            CacheError::NotCold => write!(f, "trace cache is not empty; cannot load"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<BinError> for CacheError {
    fn from(e: BinError) -> Self {
        CacheError::Corrupt(e)
    }
}

/// FNV-1a over the compiled program's canonical `Debug` rendering — the
/// cache-entry key. Any change to any function's bytecode, the constant
/// pools, or the property-site allocation changes the key, so a stale
/// entry is simply never found (a miss, not a revalidation failure).
pub fn program_checksum(prog: &Program) -> u64 {
    fnv1a64(format!("{prog:?}").as_bytes())
}

/// Fingerprint of the realm at trace-install time. Captured right after
/// bytecode compilation — the exact point where a warm process loads the
/// cache — so equal fingerprints mean the loaded traces' embedded heap
/// references (callee function objects, interned symbols, global slots)
/// resolve identically in this process.
pub fn realm_fingerprint(realm: &Realm) -> u64 {
    let mut h = Fnv1a64::new();
    h.update_u64(realm.heap.live_objects() as u64);
    h.update_u64(realm.heap.live_strings() as u64);
    h.update_u64(realm.heap.live_doubles() as u64);
    h.update_u64(realm.shapes.len() as u64);
    h.update_u64(realm.symbols.len() as u64);
    h.update_u64(realm.globals.len() as u64);
    h.update_u64(realm.natives.len() as u64);
    h.update_u64(realm.rng_state);
    h.finish()
}

/// A cache file bound to one compiled program: the path plus the two
/// values that key and guard its entry. Capture it right after
/// compilation, before the program runs.
#[derive(Debug, Clone)]
pub struct CacheHandle {
    /// The cache file.
    pub path: PathBuf,
    /// [`program_checksum`] of the compiled program.
    pub program_key: u64,
    /// [`realm_fingerprint`] at the capture point.
    pub fingerprint: u64,
}

impl CacheHandle {
    /// Captures the key and fingerprint for `prog` in `realm`.
    pub fn capture(path: PathBuf, prog: &Program, realm: &Realm) -> CacheHandle {
        CacheHandle {
            path,
            program_key: program_checksum(prog),
            fingerprint: realm_fingerprint(realm),
        }
    }
}

/// A guarded shape's creation-order-independent identity: the property
/// names on its transition path from the empty shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapePath {
    /// The shape id as embedded in the entry's fragments.
    pub id: u32,
    /// Property names from the empty shape, in definition order.
    pub path: Vec<String>,
}

/// One fully decoded (but not yet validated or installed) cache entry.
/// [`read_cache_file`] exposes these for offline inspection
/// (`examples/dump_fragments.rs`).
#[derive(Debug)]
pub struct CacheEntry {
    /// [`program_checksum`] key of the program this entry belongs to.
    pub program_key: u64,
    /// [`realm_fingerprint`] at the install point of the saving process.
    pub fingerprint: u64,
    /// Identities of every shape id guarded by the entry's fragments.
    pub shapes: Vec<ShapePath>,
    /// Oracle demoted variables (§3.2).
    pub oracle_vars: Vec<VarKey>,
    /// Oracle demoted arithmetic sites.
    pub oracle_sites: Vec<Site>,
    /// Durable blacklist entries (§3.3).
    pub blacklist: Vec<PersistedEntry>,
    /// Silenced anchors as `(function, dense loop index)`; the loop index
    /// equals the function's loop count for function-entry anchors.
    pub silenced: Vec<(FuncId, u16)>,
    /// The trace trees, in [`crate::tree::TreeId`] order.
    pub trees: Vec<TraceTree>,
}

// ---------------------------------------------------------------------------
// Field codecs (format version 1; see docs/PERSISTENCE.md §4-§7).
// ---------------------------------------------------------------------------

fn w_slotkey(k: SlotKey, w: &mut ByteWriter) {
    match k {
        SlotKey::Global(g) => {
            w.u8(0);
            w.u32(g);
        }
        SlotKey::Local { depth, slot } => {
            w.u8(1);
            w.u8(depth);
            w.u16(slot);
        }
        SlotKey::Stack { depth, idx } => {
            w.u8(2);
            w.u8(depth);
            w.u16(idx);
        }
        SlotKey::Reimport { site, idx } => {
            w.u8(3);
            w.u32(site);
            w.u16(idx);
        }
    }
}

fn r_slotkey(r: &mut ByteReader) -> Result<SlotKey, BinError> {
    let at = r.pos();
    match r.u8()? {
        0 => Ok(SlotKey::Global(r.u32()?)),
        1 => Ok(SlotKey::Local { depth: r.u8()?, slot: r.u16()? }),
        2 => Ok(SlotKey::Stack { depth: r.u8()?, idx: r.u16()? }),
        3 => Ok(SlotKey::Reimport { site: r.u32()?, idx: r.u16()? }),
        tag => Err(BinError::BadTag { at, tag: u64::from(tag), what: "SlotKey" }),
    }
}

fn w_lirtype(t: LirType, w: &mut ByteWriter) {
    w.u8(match t {
        LirType::Int => 0,
        LirType::Double => 1,
        LirType::Object => 2,
        LirType::String => 3,
        LirType::Bool => 4,
        LirType::Null => 5,
        LirType::Undefined => 6,
        LirType::Boxed => 7,
    });
}

fn r_lirtype(r: &mut ByteReader) -> Result<LirType, BinError> {
    let at = r.pos();
    Ok(match r.u8()? {
        0 => LirType::Int,
        1 => LirType::Double,
        2 => LirType::Object,
        3 => LirType::String,
        4 => LirType::Bool,
        5 => LirType::Null,
        6 => LirType::Undefined,
        7 => LirType::Boxed,
        tag => return Err(BinError::BadTag { at, tag: u64::from(tag), what: "LirType" }),
    })
}

fn w_exitkind(k: ExitKind, w: &mut ByteWriter) {
    w.u8(match k {
        ExitKind::Branch => 0,
        ExitKind::LoopEdge => 1,
        ExitKind::Unstable => 2,
        ExitKind::LeaveLoop => 3,
        ExitKind::DeepBail => 4,
        ExitKind::NestedUnexpected => 5,
    });
}

fn r_exitkind(r: &mut ByteReader) -> Result<ExitKind, BinError> {
    let at = r.pos();
    Ok(match r.u8()? {
        0 => ExitKind::Branch,
        1 => ExitKind::LoopEdge,
        2 => ExitKind::Unstable,
        3 => ExitKind::LeaveLoop,
        4 => ExitKind::DeepBail,
        5 => ExitKind::NestedUnexpected,
        tag => return Err(BinError::BadTag { at, tag: u64::from(tag), what: "ExitKind" }),
    })
}

fn w_triples(ts: &[(ArSlot, SlotKey, LirType)], w: &mut ByteWriter) {
    w.u32(ts.len() as u32);
    for &(ar, key, ty) in ts {
        w.u16(ar);
        w_slotkey(key, w);
        w_lirtype(ty, w);
    }
}

fn r_triples(r: &mut ByteReader) -> Result<Vec<(ArSlot, SlotKey, LirType)>, BinError> {
    let n = r.seq_len(5)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ar = r.u16()?;
        let key = r_slotkey(r)?;
        let ty = r_lirtype(r)?;
        out.push((ar, key, ty));
    }
    Ok(out)
}

fn w_exit(e: &SideExitInfo, w: &mut ByteWriter) {
    w_exitkind(e.kind, w);
    w.u32(e.frames.len() as u32);
    for f in &e.frames {
        w.u32(f.func.0);
        w.u32(f.resume_pc);
        w.u16(f.stack_depth);
        w.bool(f.is_construct);
        w.u64(f.callee_raw);
    }
    w_triples(&e.write_back, w);
    w.u32(e.oracle_hint.len() as u32);
    for &k in &e.oracle_hint {
        w_slotkey(k, w);
    }
    w_triples(&e.typemap, w);
    match e.arith_site {
        Some((f, pc)) => {
            w.bool(true);
            w.u32(f.0);
            w.u32(pc);
        }
        None => w.bool(false),
    }
}

fn r_exit(r: &mut ByteReader) -> Result<SideExitInfo, BinError> {
    let kind = r_exitkind(r)?;
    let nframes = r.seq_len(15)?;
    let mut frames = Vec::with_capacity(nframes);
    for _ in 0..nframes {
        frames.push(FrameDesc {
            func: FuncId(r.u32()?),
            resume_pc: r.u32()?,
            stack_depth: r.u16()?,
            is_construct: r.bool()?,
            callee_raw: r.u64()?,
        });
    }
    let write_back = r_triples(r)?;
    let nhints = r.seq_len(5)?;
    let mut oracle_hint = Vec::with_capacity(nhints);
    for _ in 0..nhints {
        oracle_hint.push(r_slotkey(r)?);
    }
    let typemap = r_triples(r)?;
    let arith_site =
        if r.bool()? { Some((FuncId(r.u32()?), r.u32()?)) } else { None };
    Ok(SideExitInfo { kind, frames, write_back, oracle_hint, typemap, arith_site })
}

fn w_anchor(a: Anchor, w: &mut ByteWriter) {
    w.u32(a.func.0);
    w.u32(a.pc);
    w.u16(a.loop_id.0);
    w.u8(match a.kind {
        AnchorKind::LoopHeader => 0,
        AnchorKind::FuncEntry => 1,
    });
}

fn r_anchor(r: &mut ByteReader) -> Result<Anchor, BinError> {
    let func = FuncId(r.u32()?);
    let pc = r.u32()?;
    let loop_id = LoopId(r.u16()?);
    let at = r.pos();
    let kind = match r.u8()? {
        0 => AnchorKind::LoopHeader,
        1 => AnchorKind::FuncEntry,
        tag => return Err(BinError::BadTag { at, tag: u64::from(tag), what: "AnchorKind" }),
    };
    Ok(Anchor { func, pc, loop_id, kind })
}

fn w_nested(n: &NestedSite, w: &mut ByteWriter) {
    w.u32(n.inner.0);
    w.u32(n.expected_exit.0);
    w.u16(n.expected_exit.1);
    w_triples(&n.reimports, w);
    w_exit(&n.callsite, w);
    w.u16(n.callsite_exit);
}

fn r_nested(r: &mut ByteReader) -> Result<NestedSite, BinError> {
    Ok(NestedSite {
        inner: crate::tree::TreeId(r.u32()?),
        expected_exit: (r.u32()?, r.u16()?),
        reimports: r_triples(r)?,
        callsite: r_exit(r)?,
        callsite_exit: r.u16()?,
    })
}

fn encode_tree(t: &TraceTree, w: &mut ByteWriter) {
    w_anchor(t.anchor, w);
    let nslots = t.layout.len();
    w.u32(nslots as u32);
    for s in 0..nslots {
        w_slotkey(t.layout.key(s as ArSlot), w);
    }
    w.u32(t.entry.len() as u32);
    for e in &t.entry {
        w.u16(e.ar);
        w_slotkey(e.key, w);
        w_lirtype(e.ty, w);
    }
    w.u32(t.fragments.len() as u32);
    for f in t.fragments.iter() {
        encode_fragment(f, w);
    }
    for exits in &t.exits {
        w.u32(exits.len() as u32);
        for e in exits {
            w_exit(e, w);
        }
    }
    for &bc in &t.fragment_bytecodes {
        w.u32(bc);
    }
    for states in &t.exit_states {
        for st in states {
            w.u32(st.failures);
            w.u32(st.branch.unwrap_or(u32::MAX));
        }
    }
    for reqs in &t.frag_entry_reqs {
        w_triples(reqs, w);
    }
    w.u32(t.nested_sites.len() as u32);
    for n in &t.nested_sites {
        w_nested(n, w);
    }
    w_triples(&t.loop_writes, w);
    w.bool(t.unstable);
    w.bool(t.disabled);
}

fn decode_tree(r: &mut ByteReader) -> Result<TraceTree, CacheError> {
    let anchor = r_anchor(r)?;
    let nkeys = r.seq_len(3)?;
    let mut layout = ArLayout::new();
    for _ in 0..nkeys {
        layout.slot(r_slotkey(r)?);
    }
    if layout.len() != nkeys {
        return Err(CacheError::BadTree("duplicate slot key in layout".into()));
    }
    let nentry = r.seq_len(5)?;
    let mut entry = Vec::with_capacity(nentry);
    for _ in 0..nentry {
        entry.push(EntrySlot { ar: r.u16()?, key: r_slotkey(r)?, ty: r_lirtype(r)? });
    }
    let nfrags = r.seq_len(8)?;
    if nfrags == 0 {
        return Err(CacheError::BadTree("tree with no fragments".into()));
    }
    let mut fragments = Vec::with_capacity(nfrags);
    for _ in 0..nfrags {
        fragments.push(decode_fragment(r)?);
    }
    let mut exits = Vec::with_capacity(nfrags);
    for _ in 0..nfrags {
        let nexits = r.seq_len(10)?;
        let mut es = Vec::with_capacity(nexits);
        for _ in 0..nexits {
            es.push(r_exit(r)?);
        }
        exits.push(es);
    }
    let mut fragment_bytecodes = Vec::with_capacity(nfrags);
    for _ in 0..nfrags {
        fragment_bytecodes.push(r.u32()?);
    }
    let mut exit_states = Vec::with_capacity(nfrags);
    for es in &exits {
        let mut states = Vec::with_capacity(es.len());
        for _ in 0..es.len() {
            let failures = r.u32()?;
            let branch = match r.u32()? {
                u32::MAX => None,
                b => Some(b),
            };
            // The hotness counter restarts at zero: a warm process counts
            // its own exit passes exactly like the cold process did, so it
            // never crosses a threshold the cold process did not cross.
            states.push(ExitState { counter: 0, failures, branch });
        }
        exit_states.push(states);
    }
    let mut frag_entry_reqs = Vec::with_capacity(nfrags);
    for _ in 0..nfrags {
        frag_entry_reqs.push(r_triples(r)?);
    }
    let nsites = r.seq_len(20)?;
    let mut nested_sites = Vec::with_capacity(nsites);
    for _ in 0..nsites {
        nested_sites.push(r_nested(r)?);
    }
    let loop_writes = r_triples(r)?;
    let unstable = r.bool()?;
    let disabled = r.bool()?;
    Ok(TraceTree {
        id: crate::tree::TreeId(0), // assigned by TreeCache::insert
        anchor,
        layout,
        entry,
        fragments: Arc::new(fragments),
        exits,
        fragment_bytecodes,
        exit_states,
        frag_entry_reqs,
        nested_sites,
        loop_writes,
        lir: Vec::new(), // diagnostics-only; never persisted
        unstable,
        disabled,
        stats: TreeStats::default(),
    })
}

fn encode_entry_body(
    fingerprint: u64,
    shapes: &[ShapePath],
    oracle_vars: &[VarKey],
    oracle_sites: &[Site],
    blacklist: &[PersistedEntry],
    silenced: &[(FuncId, u16)],
    trees: &mut dyn Iterator<Item = &TraceTree>,
    ntrees: u32,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(fingerprint);
    w.u32(shapes.len() as u32);
    for s in shapes {
        w.u32(s.id);
        w.u32(s.path.len() as u32);
        for p in &s.path {
            w.str(p);
        }
    }
    w.u32(oracle_vars.len() as u32);
    for v in oracle_vars {
        match *v {
            VarKey::Global(g) => {
                w.u8(0);
                w.u32(g);
            }
            VarKey::Local(f, s) => {
                w.u8(1);
                w.u32(f.0);
                w.u16(s);
            }
        }
    }
    w.u32(oracle_sites.len() as u32);
    for &(f, pc) in oracle_sites {
        w.u32(f.0);
        w.u32(pc);
    }
    w.u32(blacklist.len() as u32);
    for b in blacklist {
        w.u32(b.start.0 .0);
        w.u32(b.start.1);
        w.u32(b.failures);
        w.bool(b.blacklisted);
    }
    w.u32(silenced.len() as u32);
    for &(f, l) in silenced {
        w.u32(f.0);
        w.u16(l);
    }
    w.u32(ntrees);
    for t in trees {
        encode_tree(t, &mut w);
    }
    w.into_bytes()
}

fn decode_entry_body(program_key: u64, body: &[u8]) -> Result<CacheEntry, CacheError> {
    let mut r = ByteReader::new(body);
    let fingerprint = r.u64()?;
    let nshapes = r.seq_len(8)?;
    let mut shapes = Vec::with_capacity(nshapes);
    for _ in 0..nshapes {
        let id = r.u32()?;
        let nprops = r.seq_len(4)?;
        let mut path = Vec::with_capacity(nprops);
        for _ in 0..nprops {
            path.push(r.str()?.to_string());
        }
        shapes.push(ShapePath { id, path });
    }
    let nvars = r.seq_len(5)?;
    let mut oracle_vars = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let at = r.pos();
        oracle_vars.push(match r.u8()? {
            0 => VarKey::Global(r.u32()?),
            1 => VarKey::Local(FuncId(r.u32()?), r.u16()?),
            tag => {
                return Err(CacheError::Corrupt(BinError::BadTag {
                    at,
                    tag: u64::from(tag),
                    what: "VarKey",
                }))
            }
        });
    }
    let nsites = r.seq_len(8)?;
    let mut oracle_sites = Vec::with_capacity(nsites);
    for _ in 0..nsites {
        oracle_sites.push((FuncId(r.u32()?), r.u32()?));
    }
    let nbl = r.seq_len(13)?;
    let mut blacklist = Vec::with_capacity(nbl);
    for _ in 0..nbl {
        blacklist.push(PersistedEntry {
            start: (FuncId(r.u32()?), r.u32()?),
            failures: r.u32()?,
            blacklisted: r.bool()?,
        });
    }
    let nsil = r.seq_len(6)?;
    let mut silenced = Vec::with_capacity(nsil);
    for _ in 0..nsil {
        silenced.push((FuncId(r.u32()?), r.u16()?));
    }
    let ntrees = r.seq_len(32)?;
    let mut trees = Vec::with_capacity(ntrees);
    for _ in 0..ntrees {
        trees.push(decode_tree(&mut r)?);
    }
    if !r.is_at_end() {
        return Err(CacheError::BadTree("trailing bytes after last tree".into()));
    }
    Ok(CacheEntry {
        program_key,
        fingerprint,
        shapes,
        oracle_vars,
        oracle_sites,
        blacklist,
        silenced,
        trees,
    })
}

// ---------------------------------------------------------------------------
// File container (docs/PERSISTENCE.md §3): magic, version, raw entries.
// ---------------------------------------------------------------------------

/// Splits a cache file into `(program_key, body)` pairs, validating the
/// container structure and each entry's trailing checksum but not the
/// entry bodies themselves.
fn split_file(bytes: &[u8]) -> Result<Vec<(u64, Vec<u8>)>, CacheError> {
    let mut r = ByteReader::new(bytes);
    if r.raw(4).map_err(CacheError::Corrupt)? != MAGIC.as_slice() {
        return Err(CacheError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CacheError::BadVersion { found: version });
    }
    let nentries = r.seq_len(16)?;
    let mut entries = Vec::with_capacity(nentries);
    for _ in 0..nentries {
        let key = r.u64()?;
        let body = r.bytes_u32()?;
        let stored = r.u64()?;
        if fnv1a64(body) != stored {
            return Err(CacheError::ChecksumMismatch);
        }
        entries.push((key, body.to_vec()));
    }
    if !r.is_at_end() {
        return Err(CacheError::Corrupt(BinError::BadLength {
            at: r.pos(),
            len: r.remaining() as u64,
        }));
    }
    Ok(entries)
}

fn join_file(entries: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.raw(&MAGIC);
    w.u32(VERSION);
    w.u32(entries.len() as u32);
    for (key, body) in entries {
        w.u64(*key);
        w.bytes_u32(body);
        w.u64(fnv1a64(body));
    }
    w.into_bytes()
}

/// Reads and fully decodes every entry of a cache file — the offline
/// inspection path used by `examples/dump_fragments.rs`. Entries are
/// checksum-verified and structurally decoded, but *not* revalidated
/// against any program or realm (there is none to validate against).
pub fn read_cache_file(path: &Path) -> Result<Vec<CacheEntry>, CacheError> {
    let bytes = std::fs::read(path).map_err(|e| CacheError::Io(e.to_string()))?;
    let raw = split_file(&bytes)?;
    raw.into_iter().map(|(key, body)| decode_entry_body(key, &body)).collect()
}

// ---------------------------------------------------------------------------
// Revalidation (docs/PERSISTENCE.md §8) and installation.
// ---------------------------------------------------------------------------

/// Resolves the entry's stored shape identities against the live shape
/// tree, returning a remap table for ids whose path now resolves to a
/// different id. See the decision table in `docs/PERSISTENCE.md` §5.
fn resolve_shapes(realm: &Realm, shapes: &[ShapePath]) -> Result<HashMap<u32, u32>, CacheError> {
    let mut remap = HashMap::new();
    let live = realm.shapes.len() as u32;
    for s in shapes {
        let syms: Option<Vec<_>> =
            s.path.iter().map(|name| realm.symbols.lookup(name)).collect();
        let found = syms.and_then(|syms| realm.shapes.find_path(&syms));
        match found {
            Some(t) if t.0 == s.id => {} // identity: nothing to do
            Some(t) => {
                remap.insert(s.id, t.0);
            }
            // The path does not exist yet. If the id is beyond the live
            // table it will be created (deterministically) during the
            // run, exactly as in the recording process; if the id is
            // already taken by some *other* shape, the entry is stale.
            None if s.id >= live => {}
            None => return Err(CacheError::ShapeConflict { id: s.id }),
        }
    }
    Ok(remap)
}

fn apply_shape_remap(frag: &mut Fragment, remap: &HashMap<u32, u32>) {
    if remap.is_empty() {
        return;
    }
    for inst in &mut frag.code {
        if let MachInst::GuardShape { shape, .. } = inst {
            if let Some(&n) = remap.get(shape) {
                *shape = n;
            }
        }
    }
}

/// Validates one decoded tree against the running program: anchor
/// consistency, parallel-array shapes, AR-slot and frame bounds. Runs
/// before the verifier pass (which checks the fragment code itself).
fn validate_tree(prog: &Program, globals_len: u32, ntrees: u32, t: &TraceTree) -> Result<(), CacheError> {
    let bad = |msg: String| Err(CacheError::BadTree(msg));
    let nfuncs = prog.functions.len() as u32;
    if t.anchor.func.0 >= nfuncs {
        return bad(format!("anchor function {} out of range", t.anchor.func.0));
    }
    let func = &prog.functions[t.anchor.func.0 as usize];
    let nloops = func.loops.len() as u16;
    match t.anchor.kind {
        AnchorKind::LoopHeader => {
            if t.anchor.loop_id.0 >= nloops
                || func.loops[t.anchor.loop_id.0 as usize].header != t.anchor.pc
            {
                return bad(format!(
                    "loop anchor ({}, pc {}) does not name a loop header",
                    t.anchor.func.0, t.anchor.pc
                ));
            }
        }
        AnchorKind::FuncEntry => {
            if t.anchor.loop_id.0 != nloops || t.anchor.pc != 0 {
                return bad("malformed function-entry anchor".into());
            }
        }
    }
    let nfrags = t.fragments.len();
    if t.exits.len() != nfrags
        || t.exit_states.len() != nfrags
        || t.fragment_bytecodes.len() != nfrags
        || t.frag_entry_reqs.len() != nfrags
    {
        return bad("per-fragment arrays are not parallel".into());
    }
    for (i, frag) in t.fragments.iter().enumerate() {
        if t.exits[i].len() != frag.exit_targets.len()
            || t.exit_states[i].len() != frag.exit_targets.len()
        {
            return bad(format!("fragment {i}: exit arrays are not parallel"));
        }
    }
    let nslots = t.layout.len() as u32;
    let check_key = |key: SlotKey| -> Result<(), CacheError> {
        if let SlotKey::Global(g) = key {
            if g >= globals_len {
                return Err(CacheError::BadTree(format!("global slot {g} out of range")));
            }
        }
        Ok(())
    };
    let check_triples = |what: &str, ts: &[(ArSlot, SlotKey, LirType)]| -> Result<(), CacheError> {
        for &(ar, key, _) in ts {
            if u32::from(ar) >= nslots {
                return Err(CacheError::BadTree(format!("{what}: AR slot {ar} out of range")));
            }
            check_key(key)?;
        }
        Ok(())
    };
    for e in &t.entry {
        if u32::from(e.ar) >= nslots {
            return bad(format!("entry map: AR slot {} out of range", e.ar));
        }
        check_key(e.key)?;
    }
    let check_exit = |what: &str, e: &SideExitInfo| -> Result<(), CacheError> {
        if e.frames.is_empty() {
            return Err(CacheError::BadTree(format!("{what}: exit with no frames")));
        }
        for f in &e.frames {
            if f.func.0 >= nfuncs {
                return Err(CacheError::BadTree(format!(
                    "{what}: frame function {} out of range",
                    f.func.0
                )));
            }
            let code_len = prog.functions[f.func.0 as usize].code.len() as u32;
            if f.resume_pc >= code_len {
                return Err(CacheError::BadTree(format!(
                    "{what}: resume pc {} out of range",
                    f.resume_pc
                )));
            }
        }
        check_triples(what, &e.write_back)?;
        check_triples(what, &e.typemap)?;
        for &k in &e.oracle_hint {
            check_key(k)?;
        }
        Ok(())
    };
    for (i, exits) in t.exits.iter().enumerate() {
        for (j, e) in exits.iter().enumerate() {
            check_exit(&format!("fragment {i} exit {j}"), e)?;
        }
    }
    for reqs in &t.frag_entry_reqs {
        check_triples("fragment entry requirements", reqs)?;
    }
    check_triples("loop writes", &t.loop_writes)?;
    for (i, site) in t.nested_sites.iter().enumerate() {
        if site.inner.0 >= ntrees {
            return bad(format!("nested site {i}: inner tree {} out of range", site.inner.0));
        }
        check_triples("nested reimports", &site.reimports)?;
        check_exit(&format!("nested site {i} callsite"), &site.callsite)?;
    }
    Ok(())
}

impl Monitor {
    /// Loads this program's entry from the cache at `handle`, installing
    /// its trees, oracle, blacklist, and silenced anchors into a cold
    /// monitor. Returns `Ok(true)` on a hit, `Ok(false)` on a clean miss
    /// (no file, or no entry for this program), and `Err` when an entry
    /// existed but failed revalidation — in every non-`Ok(true)` case the
    /// monitor is left untouched and the run proceeds cold.
    ///
    /// Counters: a hit bumps `cache_hits`, `cache_loaded_trees`, and
    /// `cache_loaded_fragments`; a miss bumps `cache_misses`; a rejection
    /// bumps `cache_revalidation_failures`.
    pub fn load_cache(
        &mut self,
        handle: &CacheHandle,
        interp: &mut Interp,
        realm: &Realm,
    ) -> Result<bool, CacheError> {
        let bytes = match std::fs::read(&handle.path) {
            Ok(b) => b,
            Err(_) => {
                self.profiler.stats.cache_misses += 1;
                return Ok(false);
            }
        };
        let raw = match split_file(&bytes) {
            Ok(raw) => raw,
            Err(e) => {
                self.profiler.stats.cache_revalidation_failures += 1;
                return Err(e);
            }
        };
        let Some((key, body)) = raw.into_iter().find(|&(k, _)| k == handle.program_key) else {
            self.profiler.stats.cache_misses += 1;
            return Ok(false);
        };
        match self.revalidate_and_install(key, &body, handle, interp, realm) {
            Ok(()) => {
                self.profiler.stats.cache_hits += 1;
                Ok(true)
            }
            Err(e) => {
                self.profiler.stats.cache_revalidation_failures += 1;
                Err(e)
            }
        }
    }

    /// The full revalidation pipeline for one located entry: decode,
    /// fingerprint check, shape resolution and remap, per-tree semantic
    /// validation, `tm-verifier` on every fragment — and only then
    /// installation. Nothing is installed unless everything passes.
    fn revalidate_and_install(
        &mut self,
        key: u64,
        body: &[u8],
        handle: &CacheHandle,
        interp: &mut Interp,
        realm: &Realm,
    ) -> Result<(), CacheError> {
        if !self.cache.is_empty() {
            return Err(CacheError::NotCold);
        }
        let mut entry = decode_entry_body(key, body)?;
        if entry.fingerprint != handle.fingerprint {
            return Err(CacheError::FingerprintMismatch {
                stored: entry.fingerprint,
                current: handle.fingerprint,
            });
        }
        let remap = resolve_shapes(realm, &entry.shapes)?;
        let prog = interp.prog();
        let globals_len = realm.globals.len() as u32;
        let ntrees = entry.trees.len() as u32;
        for (i, tree) in entry.trees.iter_mut().enumerate() {
            {
                let frags = Arc::get_mut(&mut tree.fragments)
                    .expect("decoded fragments are uniquely owned");
                for frag in frags.iter_mut() {
                    apply_shape_remap(frag, &remap);
                }
            }
            validate_tree(prog, globals_len, ntrees, tree)?;
            tm_verifier::verify_loaded_fragments(&tree.fragments).map_err(
                |(fragment, err)| CacheError::VerifyFailed {
                    tree: i as u32,
                    fragment,
                    error: err.to_string(),
                },
            )?;
        }
        let nloops = |f: FuncId| prog.functions[f.0 as usize].loops.len() as u16;
        for &(f, l) in &entry.silenced {
            if f.0 >= prog.functions.len() as u32 || l > nloops(f) {
                return Err(CacheError::BadTree(format!(
                    "silenced anchor ({}, {l}) out of range",
                    f.0
                )));
            }
        }
        // Everything validated — install. From here on nothing can fail.
        self.ensure_slots(interp);
        let mut loaded_fragments = 0u64;
        for mut tree in entry.trees {
            // A warm process must never *pay for* branch recording the
            // cold process already proved unprofitable: restored exit
            // failures are saturated so `maybe_extend` treats them as
            // exhausted (the same policy as `Blacklist::restore`).
            for states in &mut tree.exit_states {
                for st in states {
                    if st.failures > 0 && st.branch.is_none() {
                        st.failures = u32::MAX;
                    }
                }
            }
            loaded_fragments += tree.fragments.len() as u64;
            let anchor = tree.anchor;
            let tid = self.cache.insert(tree);
            self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize].trees.push(tid);
            self.profiler.stats.cache_loaded_trees += 1;
            // In a multi-tenant process, trees revalidated from disk are
            // as shareable as freshly compiled ones: publish them so the
            // other realms warm-start from one realm's `.tmc` load.
            self.publish_shared(tid);
        }
        self.profiler.stats.cache_loaded_fragments += loaded_fragments;
        self.oracle.restore(&entry.oracle_vars, &entry.oracle_sites);
        self.blacklist.restore(&entry.blacklist);
        for (f, l) in entry.silenced {
            let func = &interp.prog().functions[f.0 as usize];
            let anchor = if (l as usize) < func.loops.len() {
                Anchor::loop_header(f, func.loops[l as usize].header, LoopId(l))
            } else {
                Anchor::func_entry(f, func.loops.len())
            };
            self.silence_header(anchor, interp);
        }
        Ok(())
    }

    /// Writes this monitor's durable state to the cache at `handle`,
    /// preserving other programs' entries in the file. Returns `Ok(true)`
    /// when an entry was written, `Ok(false)` when there was nothing new
    /// to persist (an empty monitor, or a warm run that recorded
    /// nothing).
    pub fn save_cache(&self, handle: &CacheHandle, realm: &Realm) -> Result<bool, CacheError> {
        let stats = &self.profiler.stats;
        // A warm run that recorded nothing has nothing the file does not
        // already contain; leave it untouched.
        if stats.cache_hits > 0 && stats.traces_completed == 0 && stats.traces_aborted == 0 {
            return Ok(false);
        }
        let blacklist = self.blacklist.export();
        let (oracle_vars, oracle_sites) = self.oracle.export();
        let mut silenced = Vec::new();
        for (f, slots) in self.slots.iter().enumerate() {
            for (l, slot) in slots.iter().enumerate() {
                if slot.silenced {
                    silenced.push((FuncId(f as u32), l as u16));
                }
            }
        }
        if self.cache.is_empty()
            && blacklist.is_empty()
            && silenced.is_empty()
            && oracle_vars.is_empty()
            && oracle_sites.is_empty()
        {
            return Ok(false);
        }
        // Collect the identity (property path) of every guarded shape.
        let mut shapes: Vec<ShapePath> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for tree in self.cache.iter() {
            for frag in tree.fragments.iter() {
                for inst in &frag.code {
                    if let MachInst::GuardShape { shape, .. } = inst {
                        if seen.insert(*shape) {
                            if let Some(path) = realm.shapes.path(ShapeId(*shape)) {
                                shapes.push(ShapePath {
                                    id: *shape,
                                    path: path
                                        .iter()
                                        .map(|&s| realm.symbols.name(s).to_string())
                                        .collect(),
                                });
                            }
                        }
                    }
                }
            }
        }
        shapes.sort_by_key(|s| s.id);
        let body = encode_entry_body(
            handle.fingerprint,
            &shapes,
            &oracle_vars,
            &oracle_sites,
            &blacklist,
            &silenced,
            &mut self.cache.iter(),
            self.cache.len() as u32,
        );
        // Upsert into the existing file, preserving other programs'
        // entries; an unreadable or invalid file is simply replaced.
        let mut entries = std::fs::read(&handle.path)
            .ok()
            .and_then(|bytes| split_file(&bytes).ok())
            .unwrap_or_default();
        match entries.iter_mut().find(|(k, _)| *k == handle.program_key) {
            Some(slot) => slot.1 = body,
            None => entries.push((handle.program_key, body)),
        }
        let out = join_file(&entries);
        // The temp name must be unique per *writer*, not just per process:
        // two realm threads saving the same path concurrently would
        // otherwise interleave writes into one temp file and rename a torn
        // image into place. pid + a process-global counter keeps every
        // writer on its own file; the final rename stays atomic, so
        // concurrent saves degrade to last-writer-wins, never corruption.
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = handle
            .path
            .with_extension(format!("tmp.{}.{}", std::process::id(), seq));
        std::fs::write(&tmp, &out).map_err(|e| CacheError::Io(e.to_string()))?;
        std::fs::rename(&tmp, &handle.path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CacheError::Io(e.to_string())
        })?;
        Ok(true)
    }
}

/// The cache path requested by the `TM_CACHE` environment variable, or
/// `None` when the cache is disabled (`TM_CACHE` unset, empty, `off`, or
/// `0`). See `docs/TESTING.md`.
pub fn cache_path_from_env() -> Option<PathBuf> {
    match std::env::var("TM_CACHE") {
        Ok(v) if !v.is_empty() && v != "off" && v != "0" => Some(PathBuf::from(v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotkey_codec_round_trips() {
        let keys = [
            SlotKey::Global(7),
            SlotKey::Local { depth: 2, slot: 300 },
            SlotKey::Stack { depth: 0, idx: 5 },
            SlotKey::Reimport { site: 9, idx: 1 },
        ];
        let mut w = ByteWriter::new();
        for &k in &keys {
            w_slotkey(k, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &k in &keys {
            assert_eq!(r_slotkey(&mut r).unwrap(), k);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn bad_slotkey_tag_is_rejected() {
        let buf = [9u8];
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r_slotkey(&mut r), Err(BinError::BadTag { what: "SlotKey", .. })));
    }

    #[test]
    fn lirtype_and_exitkind_cover_all_discriminants() {
        for tag in 0u8..8 {
            let buf = [tag];
            let mut r = ByteReader::new(&buf);
            r_lirtype(&mut r).unwrap();
        }
        let buf = [8u8];
        let mut r = ByteReader::new(&buf);
        assert!(r_lirtype(&mut r).is_err());
        for tag in 0u8..6 {
            let buf = [tag];
            let mut r = ByteReader::new(&buf);
            r_exitkind(&mut r).unwrap();
        }
        let buf = [6u8];
        let mut r = ByteReader::new(&buf);
        assert!(r_exitkind(&mut r).is_err());
    }

    #[test]
    fn exit_codec_round_trips() {
        let e = SideExitInfo {
            kind: ExitKind::Branch,
            frames: vec![FrameDesc {
                func: FuncId(3),
                resume_pc: 17,
                stack_depth: 2,
                is_construct: true,
                callee_raw: 0xdead_beef_cafe,
            }],
            write_back: vec![(0, SlotKey::Global(1), LirType::Int)],
            oracle_hint: vec![SlotKey::Local { depth: 0, slot: 2 }],
            typemap: vec![(1, SlotKey::Stack { depth: 0, idx: 0 }, LirType::Double)],
            arith_site: Some((FuncId(3), 16)),
        };
        let mut w = ByteWriter::new();
        w_exit(&e, &mut w);
        let bytes = w.into_bytes();
        let back = r_exit(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn container_round_trips_and_detects_bit_flips() {
        let entries = vec![(0x1111u64, vec![1, 2, 3]), (0x2222, vec![9, 8])];
        let bytes = join_file(&entries);
        assert_eq!(split_file(&bytes).unwrap(), entries);
        // Flip one bit inside the first entry's body.
        let mut bad = bytes.clone();
        let body_at = 4 + 4 + 4 + 8 + 4; // magic, version, count, key, len
        bad[body_at] ^= 0x40;
        assert_eq!(split_file(&bad), Err(CacheError::ChecksumMismatch));
        // Truncations anywhere never panic and never pass.
        for cut in 0..bytes.len() {
            assert!(split_file(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Version skew is detected before any entry is touched.
        let mut skewed = bytes;
        skewed[4] = 0xfe;
        assert!(matches!(split_file(&skewed), Err(CacheError::BadVersion { .. })));
    }

    #[test]
    fn env_knob_parses_off_values() {
        // Not set by the test harness: exercised via explicit match arms.
        assert!(matches!(
            (|v: &str| if !v.is_empty() && v != "off" && v != "0" {
                Some(PathBuf::from(v))
            } else {
                None
            })("off"),
            None
        ));
    }
}
