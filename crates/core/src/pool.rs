//! The background compiler pool: trace compilation off the execution
//! thread.
//!
//! In the paper's TraceMonkey, compilation happens on the thread that
//! recorded the trace — acceptable when compiles are rare and the realm
//! is alone in the process. A multi-tenant VM wants the execution thread
//! back as soon as recording finishes: the realm keeps *interpreting*
//! while a worker runs the compile pipeline (backward filters →
//! register allocation → peephole fusion → fragment verification), and
//! the finished fragment is installed by the monitor at the next anchor
//! hit (see `Monitor::poll_compiles`). Until installation the loop
//! simply stays in the interpreter — semantically identical, just not
//! yet fast.
//!
//! A job carries the [`RecordedTrace`] by value and returns it alongside
//! the compiled [`Fragment`]; the monitor needs the (filtered) recording
//! back to build the tree (entry maps, exits, oracle marks). Results are
//! handed off on a per-job channel ([`Ticket`]), so a pool can serve any
//! number of realms without routing state.
//!
//! A compile-pipeline panic (a filter or backend defect) is caught in
//! the worker and surfaces as [`CompileOutcome::Failed`]; the submitting
//! monitor treats it like a recording abort (the §3.3 failure budget),
//! so one realm's miscompile cannot take down the process — matching the
//! sync path's behaviour of failing that site, not the VM.
//!
//! Determinism: the interleaving test rig drives the handoff through
//! `tm_support::sched` yield points (`pool.submit`, `pool.take`,
//! `pool.result`, `pool.wait`); see `docs/TESTING.md`.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tm_lir::{run_backward_filters, ArSlot, ExitLiveness, LirType};
use tm_nanojit::{assemble, emit_tree, Fragment, NativeTree};
use tm_support::sched;

use crate::config::JitOptions;
use crate::exit::SideExitInfo;
use crate::recorder::RecordedTrace;

/// A unit of compilation: one finished recording plus everything the
/// pipeline needs to run it to a fragment without touching realm state.
#[derive(Debug)]
pub struct CompileJob {
    /// The finished recording (moved in; returned with the result).
    pub recorded: RecordedTrace,
    /// Pre-existing entry state for the post-filter verification pass
    /// (empty for root traces).
    pub verify_base: Vec<(ArSlot, LirType)>,
    /// The submitting monitor's options (verify, fusion, ...).
    pub opts: JitOptions,
}

/// What came back from a worker.
#[derive(Debug)]
pub enum CompileOutcome {
    /// The pipeline succeeded: the (now backward-filtered) recording and
    /// its compiled fragment, plus the fusion statistics deltas the
    /// submitting monitor's profiler should absorb.
    Done {
        /// The recording, post-backward-filters.
        recorded: Box<RecordedTrace>,
        /// The compiled (and, if enabled, fused and verified) fragment.
        fragment: Box<Fragment>,
    },
    /// The pipeline panicked or a verification stage rejected the trace;
    /// the monitor counts it as a recording failure at the site.
    Failed(String),
}

/// A unit of native emission: translate a tree's fragments to an
/// executable buffer off the request thread. The fragments travel as the
/// tree's own `Arc` snapshot — a branch install replaces that `Arc` (and
/// invalidates the tree's native state), so a stale result is simply
/// dropped by the monitor.
#[derive(Debug)]
pub struct EmitJob {
    /// Post-peephole fragments of the whole tree (trunk + branches).
    pub fragments: Arc<Vec<Fragment>>,
}

/// What came back from a worker for an [`EmitJob`].
#[derive(Debug)]
pub enum EmitOutcome {
    /// The tree emitted; the monitor installs it as `NativeState::Ready`.
    Done(Box<NativeTree>),
    /// The emitter rejected the tree ([`tm_nanojit::x64::unsupported_op`])
    /// or the emission panicked; the monitor marks the tree
    /// `Unsupported` so it never re-tries, matching the sync path.
    Failed(String),
}

/// The submitter's handle to one in-flight emission.
#[derive(Debug)]
pub struct EmitTicket {
    rx: Receiver<EmitOutcome>,
}

impl EmitTicket {
    /// Non-blocking poll. `None` while the emission is still queued or
    /// running. A dead worker reports as [`EmitOutcome::Failed`].
    pub fn try_ready(&self) -> Option<EmitOutcome> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                Some(EmitOutcome::Failed("compiler pool shut down".into()))
            }
        }
    }
}

/// The submitter's handle to one in-flight job.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<CompileOutcome>,
}

impl Ticket {
    /// Non-blocking poll. `None` while the job is still queued or
    /// compiling. A dead worker (channel disconnect) reports as
    /// [`CompileOutcome::Failed`].
    pub fn try_ready(&self) -> Option<CompileOutcome> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                Some(CompileOutcome::Failed("compiler pool shut down".into()))
            }
        }
    }

    /// Blocking wait, used when a program finishes with compiles still
    /// in flight (the monitor drains so its final state is
    /// deterministic). Under the schedule rig this spins through a yield
    /// point instead of blocking, keeping the interleaving seeded.
    pub fn wait(&self) -> CompileOutcome {
        if sched::armed() {
            loop {
                if let Some(outcome) = self.try_ready() {
                    return outcome;
                }
                sched::yield_point("pool.wait");
            }
        }
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => CompileOutcome::Failed("compiler pool shut down".into()),
        }
    }
}

/// One queued unit of work: a trace compile or a native emission. Both
/// kinds share the queue (and the `executed`/`peak_depth` counters) so
/// worker scheduling stays a single FIFO. `CompileJob` is boxed: it
/// embeds the recording inline (~400 bytes) while an `EmitJob` is a
/// couple of pointers, and queue slots churn.
#[derive(Debug)]
enum WorkItem {
    Compile(Box<CompileJob>, Sender<CompileOutcome>),
    Emit(EmitJob, Sender<EmitOutcome>),
}

#[derive(Debug, Default)]
struct Queue {
    jobs: VecDeque<WorkItem>,
    shutdown: bool,
    /// High-water mark of queued-but-not-taken jobs (diagnostics).
    peak_depth: usize,
    executed: u64,
}

#[derive(Debug)]
struct PoolShared {
    queue: Mutex<Queue>,
    cv: Condvar,
}

/// Pool-wide counters (see `docs/DIAGNOSTICS.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs a worker has finished (success or failure).
    pub executed: u64,
    /// Deepest the queue has been.
    pub peak_depth: usize,
    /// Jobs currently queued (not yet taken by a worker).
    pub queued: usize,
}

/// A pool of background compiler threads shared by any number of realms.
///
/// Dropping the pool shuts the workers down; in-flight tickets then
/// resolve to [`CompileOutcome::Failed`], which submitting monitors
/// absorb as site failures.
#[derive(Debug)]
pub struct CompilerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl CompilerPool {
    /// Spawns a pool with `nworkers` compiler threads (minimum 1).
    pub fn new(nworkers: usize) -> CompilerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Queue::default()),
            cv: Condvar::new(),
        });
        let workers = (0..nworkers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tm-compile-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn compiler worker")
            })
            .collect();
        CompilerPool { shared, workers }
    }

    /// Enqueues `job`, returning the ticket its result will arrive on.
    pub fn submit(&self, job: CompileJob) -> Ticket {
        sched::yield_point("pool.submit");
        let (tx, rx) = channel();
        self.enqueue(WorkItem::Compile(Box::new(job), tx));
        Ticket { rx }
    }

    /// Enqueues a native-emission job (`background_compile` monitors use
    /// this so `emit_tree` never runs on the request thread).
    pub fn submit_emit(&self, job: EmitJob) -> EmitTicket {
        sched::yield_point("pool.submit");
        let (tx, rx) = channel();
        self.enqueue(WorkItem::Emit(job, tx));
        EmitTicket { rx }
    }

    fn enqueue(&self, item: WorkItem) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.jobs.push_back(item);
            q.peak_depth = q.peak_depth.max(q.jobs.len());
        }
        self.shared.cv.notify_one();
        sched::wake_all();
    }

    /// A snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        let q = self.shared.queue.lock().unwrap();
        PoolStats { executed: q.executed, peak_depth: q.peak_depth, queued: q.jobs.len() }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for CompilerPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.cv.notify_all();
        sched::wake_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        // Take one job, parking (schedule-aware) while the queue is idle.
        let next = loop {
            let mut q = shared.queue.lock().unwrap();
            if let Some(item) = q.jobs.pop_front() {
                drop(q);
                sched::yield_point("pool.take");
                break Some(item);
            }
            if q.shutdown {
                break None;
            }
            sched::pre_park("pool.park");
            let q2 = shared.cv.wait(q).unwrap();
            drop(q2);
            sched::post_park("pool.unpark");
        };
        let Some(item) = next else { return };
        enum Produced {
            Compile(CompileOutcome, Sender<CompileOutcome>),
            Emit(EmitOutcome, Sender<EmitOutcome>),
        }
        let produced = match item {
            WorkItem::Compile(job, tx) => Produced::Compile(run_pipeline(*job), tx),
            WorkItem::Emit(job, tx) => Produced::Emit(run_emit(&job), tx),
        };
        {
            let mut q = shared.queue.lock().unwrap();
            q.executed += 1;
        }
        sched::yield_point("pool.result");
        // The submitter may have vanished (program ended and the monitor
        // dropped the ticket); a send failure is fine.
        match produced {
            Produced::Compile(outcome, tx) => {
                let _ = tx.send(outcome);
            }
            Produced::Emit(outcome, tx) => {
                let _ = tx.send(outcome);
            }
        }
        sched::wake_all();
    }
}

/// The compile pipeline, identical to the monitor's synchronous
/// `compile_fragment` but free of `&mut Monitor`: backward filters, the
/// post-filter trace verification, assembly, fusion, and the backend
/// fragment verification. Panics anywhere in the pipeline are caught and
/// reported as [`CompileOutcome::Failed`].
fn run_pipeline(job: CompileJob) -> CompileOutcome {
    let CompileJob { mut recorded, verify_base, opts } = job;
    let result = std::panic::catch_unwind(AssertUnwindSafe(move || {
        let liveness = ExitLiveness {
            live_slots: recorded.exits.iter().map(SideExitInfo::live_slots).collect(),
        };
        run_backward_filters(&mut recorded.lir, &liveness, &recorded.loop_live);
        if opts.verify {
            if let Err(err) = recorded.verify(&verify_base) {
                return Err(format!("backward filters produced a malformed trace: {err}"));
            }
        }
        let mut frag = assemble(&recorded.lir);
        if opts.enable_fusion {
            frag = tm_nanojit::fuse(frag);
        }
        if opts.verify {
            if let Err(err) = tm_verifier::verify_fragment(&frag) {
                return Err(format!("backend produced a malformed fragment: {err}"));
            }
        }
        Ok((recorded, frag))
    }));
    match result {
        Ok(Ok((recorded, frag))) => CompileOutcome::Done {
            recorded: Box::new(recorded),
            fragment: Box::new(frag),
        },
        Ok(Err(msg)) => CompileOutcome::Failed(msg),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "compile pipeline panicked".into());
            CompileOutcome::Failed(format!("compile pipeline panicked: {msg}"))
        }
    }
}

/// The emission pipeline: `emit_tree` under the same panic fence as the
/// compile pipeline, so an encoder defect surfaces as a failed job (the
/// monitor marks the tree unsupported) rather than a dead worker.
fn run_emit(job: &EmitJob) -> EmitOutcome {
    let result =
        std::panic::catch_unwind(AssertUnwindSafe(|| emit_tree(&job.fragments)));
    match result {
        Ok(Ok(tree)) => EmitOutcome::Done(Box::new(tree)),
        Ok(Err(unsupported)) => EmitOutcome::Failed(unsupported.to_string()),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "emission panicked".into());
            EmitOutcome::Failed(format!("native emission panicked: {msg}"))
        }
    }
}

/// Compile-time Send audit for the pool's moving parts: jobs and
/// outcomes cross threads by construction.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CompileJob>();
    assert_send::<CompileOutcome>();
    assert_send::<Ticket>();
    assert_send::<EmitJob>();
    assert_send::<EmitOutcome>();
    assert_send::<EmitTicket>();
    assert_send::<CompilerPool>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spawns_and_drops_cleanly() {
        let pool = CompilerPool::new(2);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.stats().executed, 0);
        drop(pool);
    }

    #[test]
    fn minimum_one_worker() {
        let pool = CompilerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
