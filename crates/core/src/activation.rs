//! Trace activation records: the unboxed shadow of interpreter state.
//!
//! "To make variable accesses fast on trace, the trace also imports local
//! and global variables by unboxing them and copying them to its activation
//! record" (§3.1). A [`SlotKey`] names an interpreter-visible location
//! relative to the trace entry frame; an [`ArLayout`] assigns each key a
//! slot in the flat activation record all of a tree's fragments share
//! ("identical type maps yield identical activation record layouts", §6.2
//! — ours are identical by construction: one layout per tree).

use std::collections::HashMap;

use tm_lir::{ArSlot, LirType};
use tm_runtime::{Realm, Unpacked, Value};

/// An interpreter-visible storage location, relative to the frame in which
/// the trace was entered (depth 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKey {
    /// A realm global slot.
    Global(u32),
    /// Local `slot` of the frame at inline `depth` (0 = entry frame).
    Local {
        /// Inline frame depth.
        depth: u8,
        /// Local slot index.
        slot: u16,
    },
    /// Operand stack entry `idx` of the frame at inline `depth`.
    Stack {
        /// Inline frame depth.
        depth: u8,
        /// Position within that frame's operand stack.
        idx: u16,
    },
    /// A private re-import slot: holds a value refreshed by the nesting
    /// host after a `CallTree` (§4.1). Never part of entry maps or exit
    /// write-backs — the canonical slot for the underlying location keeps
    /// its own (possibly different) type.
    Reimport {
        /// The nested call site this re-import belongs to.
        site: u32,
        /// Ordinal within the site.
        idx: u16,
    },
}

/// Maps slot keys to activation-record slots for one trace tree.
#[derive(Debug, Clone, Default)]
pub struct ArLayout {
    slots: HashMap<SlotKey, ArSlot>,
    keys: Vec<SlotKey>,
}

impl ArLayout {
    /// Creates an empty layout.
    pub fn new() -> ArLayout {
        ArLayout::default()
    }

    /// The AR slot for `key`, allocating one on first use.
    pub fn slot(&mut self, key: SlotKey) -> ArSlot {
        if let Some(&s) = self.slots.get(&key) {
            return s;
        }
        let s = self.keys.len() as ArSlot;
        self.keys.push(key);
        self.slots.insert(key, s);
        s
    }

    /// The AR slot for `key` if already allocated.
    pub fn lookup(&self, key: SlotKey) -> Option<ArSlot> {
        self.slots.get(&key).copied()
    }

    /// The key stored at `slot`.
    pub fn key(&self, slot: ArSlot) -> SlotKey {
        self.keys[slot as usize]
    }

    /// Number of slots allocated.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Checks whether a boxed interpreter value matches an entry type — the
/// trace-cache lookup test ("a trace can be entered if the PC and the types
/// of values match those observed when recording was started").
///
/// `Double` accepts any number (ints are widened at entry), `Int` requires
/// the inline integer representation, `Boxed` accepts anything.
pub fn value_matches(realm: &Realm, v: Value, ty: LirType) -> bool {
    let _ = realm;
    match ty {
        LirType::Int => v.is_int(),
        LirType::Double => v.is_number(),
        LirType::Object => v.is_object(),
        LirType::String => v.is_string(),
        LirType::Bool => v.is_bool(),
        LirType::Null => v.is_null(),
        LirType::Undefined => v.is_undefined(),
        LirType::Boxed => true,
    }
}

/// Unboxes a value into the raw word representation for an AR slot of the
/// given type. The caller must have verified [`value_matches`].
pub fn unbox_to_word(realm: &Realm, v: Value, ty: LirType) -> u64 {
    match ty {
        LirType::Int => i64::from(v.as_int().expect("entry check")) as u64,
        LirType::Double => realm.heap.number_value(v).expect("entry check").to_bits(),
        LirType::Object => u64::from(v.as_object().expect("entry check").0),
        LirType::String => u64::from(v.as_string().expect("entry check").0),
        LirType::Bool => u64::from(v.as_bool().expect("entry check")),
        LirType::Null | LirType::Undefined | LirType::Boxed => v.raw(),
    }
}

/// Boxes a raw AR word back into a value per its exit type. Boxing a
/// double goes through `Heap::number`, which re-compresses integral values
/// into the inline integer representation — exactly what the interpreter
/// would have produced.
pub fn box_from_word(realm: &mut Realm, w: u64, ty: LirType) -> Value {
    match ty {
        LirType::Int => realm.heap.number_i32(w as i32),
        LirType::Double => realm.heap.number(f64::from_bits(w)),
        LirType::Object => Value::new_object(tm_runtime::ObjectId(w as u32)),
        LirType::String => Value::new_string(tm_runtime::StringId(w as u32)),
        LirType::Bool => Value::new_bool(w != 0),
        LirType::Null => Value::NULL,
        LirType::Undefined => Value::UNDEFINED,
        LirType::Boxed => Value::from_raw(w),
    }
}

/// The observed [`LirType`] of a concrete value (used when choosing entry
/// types during recording).
pub fn observed_type(v: Value) -> LirType {
    match v.unpack() {
        Unpacked::Int(_) => LirType::Int,
        Unpacked::Double(_) => LirType::Double,
        Unpacked::Object(_) => LirType::Object,
        Unpacked::String(_) => LirType::String,
        Unpacked::Bool(_) => LirType::Bool,
        Unpacked::Null => LirType::Null,
        Unpacked::Undefined => LirType::Undefined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_stable() {
        let mut l = ArLayout::new();
        let a = l.slot(SlotKey::Global(3));
        let b = l.slot(SlotKey::Local { depth: 0, slot: 1 });
        let a2 = l.slot(SlotKey::Global(3));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(l.key(a), SlotKey::Global(3));
        assert_eq!(l.lookup(SlotKey::Stack { depth: 0, idx: 0 }), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn box_unbox_round_trips() {
        let mut realm = Realm::new();
        // Int.
        let v = Value::new_int(-7);
        assert!(value_matches(&realm, v, LirType::Int));
        let w = unbox_to_word(&realm, v, LirType::Int);
        assert_eq!(box_from_word(&mut realm, w, LirType::Int), v);
        // Double slot accepts ints and re-compresses on exit.
        assert!(value_matches(&realm, v, LirType::Double));
        let w = unbox_to_word(&realm, v, LirType::Double);
        assert_eq!(f64::from_bits(w), -7.0);
        assert_eq!(box_from_word(&mut realm, w, LirType::Double), v);
        // Non-integral double boxes as a double.
        let d = realm.heap.alloc_double(2.5);
        let w = unbox_to_word(&realm, d, LirType::Double);
        let back = box_from_word(&mut realm, w, LirType::Double);
        assert_eq!(realm.heap.number_value(back), Some(2.5));
        // Strings, bools, specials.
        let s = realm.heap.alloc_string("x");
        let w = unbox_to_word(&realm, s, LirType::String);
        assert_eq!(box_from_word(&mut realm, w, LirType::String), s);
        let w = unbox_to_word(&realm, Value::TRUE, LirType::Bool);
        assert_eq!(box_from_word(&mut realm, w, LirType::Bool), Value::TRUE);
        assert_eq!(box_from_word(&mut realm, 0, LirType::Undefined), Value::UNDEFINED);
    }

    #[test]
    fn type_matching_rules() {
        let mut realm = Realm::new();
        let i = Value::new_int(1);
        let d = realm.heap.alloc_double(0.5);
        assert!(value_matches(&realm, i, LirType::Int));
        assert!(!value_matches(&realm, d, LirType::Int), "Int slots are strict");
        assert!(value_matches(&realm, d, LirType::Double));
        assert!(value_matches(&realm, i, LirType::Double), "Double slots accept ints");
        assert!(value_matches(&realm, Value::NULL, LirType::Null));
        assert!(!value_matches(&realm, Value::NULL, LirType::Undefined));
        assert!(value_matches(&realm, Value::NULL, LirType::Boxed));
    }

    #[test]
    fn observed_types() {
        let mut realm = Realm::new();
        assert_eq!(observed_type(Value::new_int(3)), LirType::Int);
        let d = realm.heap.alloc_double(0.5);
        assert_eq!(observed_type(d), LirType::Double);
        assert_eq!(observed_type(Value::UNDEFINED), LirType::Undefined);
    }
}
