//! The public VM facade: parse, compile, install, and run guest programs
//! under a chosen engine.

use std::path::PathBuf;
use std::sync::Arc;

use tm_interp::{Interp, RunExit};
use tm_runtime::{Realm, RuntimeError, Value};

use crate::config::JitOptions;
use crate::monitor::Monitor;
use crate::persist::{cache_path_from_env, CacheError, CacheHandle};
use crate::pool::CompilerPool;
use crate::profiler::ProfileStats;
use crate::shared_cache::{SharedCodeCache, SharedKey};

/// Which execution engine [`Vm::eval`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The baseline bytecode interpreter (the paper's SpiderMonkey
    /// baseline, Figure 10's 1.0x).
    Interp,
    /// The interpreter with inline fast paths (the SquirrelFish Extreme
    /// stand-in).
    FastInterp,
    /// The tracing JIT (TraceMonkey).
    Tracing,
}

/// An error from [`Vm::eval`].
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Lexing/parsing failed.
    Parse(tm_frontend::ParseError),
    /// Bytecode compilation failed.
    Compile(tm_bytecode::CompileError),
    /// The guest program raised an error.
    Runtime(RuntimeError),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Parse(e) => e.fmt(f),
            VmError::Compile(e) => e.fmt(f),
            VmError::Runtime(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for VmError {}

impl From<tm_frontend::ParseError> for VmError {
    fn from(e: tm_frontend::ParseError) -> Self {
        VmError::Parse(e)
    }
}

impl From<tm_bytecode::CompileError> for VmError {
    fn from(e: tm_bytecode::CompileError) -> Self {
        VmError::Compile(e)
    }
}

impl From<RuntimeError> for VmError {
    fn from(e: RuntimeError) -> Self {
        VmError::Runtime(e)
    }
}

/// A complete guest-language virtual machine.
///
/// ```
/// use tm_core::vm::{Engine, Vm};
///
/// let mut vm = Vm::new(Engine::Tracing);
/// let v = vm.eval("var s = 0; for (var i = 1; i <= 100; i++) s += i; s")?;
/// assert_eq!(vm.realm.heap.number_value(v), Some(5050.0));
/// # Ok::<(), tm_core::vm::VmError>(())
/// ```
#[derive(Debug)]
pub struct Vm {
    /// The execution environment (globals persist across `eval` calls).
    pub realm: Realm,
    engine: Engine,
    opts: JitOptions,
    monitor: Option<Monitor>,
    last_interp: Option<Interp>,
    /// Step budget applied to each eval (guards runaway programs).
    pub step_budget: u64,
    /// Persistent trace-cache file (tracing engine only). Defaults to the
    /// `TM_CACHE` environment variable; `None` disables persistence.
    cache_path: Option<PathBuf>,
    /// Why the last eval's cache load or save was rejected, if it was.
    /// Purely diagnostic — a rejected cache degrades to a cold start.
    last_cache_error: Option<CacheError>,
    /// Process-wide shared code cache (multi-tenant deployments).
    shared: Option<Arc<SharedCodeCache>>,
    /// Background compiler pool (used when `opts.background_compile`).
    pool: Option<Arc<CompilerPool>>,
}

impl Vm {
    /// Creates a VM with default options for `engine`.
    pub fn new(engine: Engine) -> Vm {
        Vm::with_options(engine, JitOptions::default())
    }

    /// Creates a tracing VM with explicit JIT options.
    pub fn with_options(engine: Engine, opts: JitOptions) -> Vm {
        Vm {
            realm: Realm::new(),
            engine,
            opts,
            monitor: None,
            last_interp: None,
            step_budget: u64::MAX,
            cache_path: cache_path_from_env(),
            last_cache_error: None,
            shared: None,
            pool: None,
        }
    }

    /// Attaches a process-wide shared code cache: compiled trees this VM
    /// produces are published to it, and before recording, the monitor
    /// probes it for trees another realm already compiled (keyed by
    /// program checksum + realm fingerprint + anchor, so realms with
    /// diverged shape tables never share).
    pub fn attach_shared_cache(&mut self, cache: Arc<SharedCodeCache>) {
        self.shared = Some(cache);
    }

    /// Attaches a background compiler pool. Compiles are only actually
    /// offloaded when [`JitOptions::background_compile`] is set.
    pub fn attach_pool(&mut self, pool: Arc<CompilerPool>) {
        self.pool = Some(pool);
    }

    /// Sets (or disables) the persistent trace-cache file, overriding the
    /// `TM_CACHE` environment variable.
    pub fn set_cache_path(&mut self, path: Option<PathBuf>) {
        self.cache_path = path;
    }

    /// Why the last eval's cache load or save was rejected, if it was.
    pub fn last_cache_error(&self) -> Option<&CacheError> {
        self.last_cache_error.as_ref()
    }

    /// The engine this VM runs.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Evaluates a program, returning its completion value.
    ///
    /// Each call compiles a fresh program against the shared realm; the
    /// trace cache is reset (trees are program-specific).
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] for parse, compile, or runtime failures.
    pub fn eval(&mut self, source: &str) -> Result<Value, VmError> {
        let ast = tm_frontend::parse(source)?;
        let prog = tm_bytecode::compile(&ast, &mut self.realm)?;
        let mut interp = Interp::new(prog, &mut self.realm);
        interp.steps_remaining = self.step_budget;
        let result = match self.engine {
            Engine::Interp | Engine::FastInterp => {
                interp.fast_paths = self.engine == Engine::FastInterp;
                match interp.run(&mut self.realm) {
                    Ok(RunExit::Finished(v)) => Ok(v),
                    Ok(RunExit::LoopEdge { .. } | RunExit::RecursiveCall { .. }) => {
                        unreachable!("monitor disabled")
                    }
                    Err(e) => Err(VmError::Runtime(e)),
                }
            }
            Engine::Tracing => {
                let mut monitor = Monitor::new(self.opts);
                if let Some(cache) = &self.shared {
                    let key = SharedKey::capture(interp.prog(), &self.realm);
                    monitor.attach_shared(Arc::clone(cache), key);
                }
                if let Some(pool) = &self.pool {
                    monitor.attach_pool(Arc::clone(pool));
                }
                self.last_cache_error = None;
                // Capture the cache key/fingerprint at the install point
                // (post-compile, pre-run) so a warm process sees the same
                // realm the saved traces were validated against.
                let handle = self.cache_path.as_ref().map(|p| {
                    CacheHandle::capture(p.clone(), interp.prog(), &self.realm)
                });
                if let Some(h) = &handle {
                    if let Err(e) = monitor.load_cache(h, &mut interp, &self.realm) {
                        self.last_cache_error = Some(e);
                    }
                }
                let r = monitor.run_program(&mut interp, &mut self.realm);
                if let (Some(h), Ok(_)) = (&handle, &r) {
                    if let Err(e) = monitor.save_cache(h, &self.realm) {
                        self.last_cache_error = Some(e);
                    }
                }
                self.monitor = Some(monitor);
                r.map_err(VmError::Runtime)
            }
        };
        self.last_interp = Some(interp);
        result
    }

    /// Accumulated `print` output.
    pub fn output(&self) -> &str {
        &self.realm.output
    }

    /// The monitor of the last tracing run (trees, events, profiler).
    pub fn monitor(&self) -> Option<&Monitor> {
        self.monitor.as_ref()
    }

    /// The interpreter of the last run (bytecode counters).
    pub fn interp(&self) -> Option<&Interp> {
        self.last_interp.as_ref()
    }

    /// Profile statistics of the last tracing run.
    pub fn profile(&self) -> Option<&ProfileStats> {
        self.monitor.as_ref().map(|m| &m.profiler.stats)
    }

    /// Convenience: evaluate and coerce the result to a number.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`]; non-numeric results yield `None`.
    pub fn eval_number(&mut self, source: &str) -> Result<Option<f64>, VmError> {
        let v = self.eval(source)?;
        Ok(self.realm.heap.number_value(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_number_on_all_engines() {
        for engine in [Engine::Interp, Engine::FastInterp, Engine::Tracing] {
            let mut vm = Vm::new(engine);
            let v = vm.eval_number("var s = 0; for (var i = 1; i <= 10; i++) s += i; s");
            assert_eq!(v.unwrap(), Some(55.0), "{engine:?}");
        }
    }

    #[test]
    fn parse_and_compile_errors_are_reported() {
        let mut vm = Vm::new(Engine::Tracing);
        assert!(matches!(vm.eval("var x = ;"), Err(VmError::Parse(_))));
        assert!(matches!(vm.eval("break;"), Err(VmError::Compile(_))));
        let err = vm.eval("null.x").unwrap_err();
        assert!(matches!(err, VmError::Runtime(_)));
        // Errors display as readable text.
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn output_accumulates_across_evals() {
        let mut vm = Vm::new(Engine::Tracing);
        vm.eval("print('a');").unwrap();
        vm.eval("print('b');").unwrap();
        assert_eq!(vm.output(), "a\nb\n");
    }

    #[test]
    fn monitor_is_available_after_tracing_runs() {
        let mut vm = Vm::new(Engine::Tracing);
        vm.eval("var s = 0; for (var i = 0; i < 100; i++) s++; s").unwrap();
        assert!(vm.monitor().is_some());
        assert!(vm.profile().is_some());
        assert!(vm.interp().is_some());
        let mut vm2 = Vm::new(Engine::Interp);
        vm2.eval("1").unwrap();
        assert!(vm2.monitor().is_none());
    }
}
