//! The trace monitor: the state machine of the paper's Figure 2.
//!
//! The interpreter returns control here at every (unpatched) loop header.
//! The monitor counts hotness, starts and drives recordings, enters
//! compiled trees (building the activation record), restores interpreter
//! state at side exits (synthesizing inlined frames), grows trace trees at
//! hot side exits, links type-unstable siblings (Figure 6), executes
//! nested tree calls as the [`TreeHost`] (§4), and applies blacklisting
//! with nesting forgiveness (§3.3, §4.2).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use tm_interp::{Flow, Interp, RunExit};
use tm_lir::{run_backward_filters, ExitLiveness};
use tm_nanojit::{assemble, emit_tree, execute, ExitTarget, Fragment, NativeTree, TreeHost};
use tm_runtime::{Realm, RuntimeError, Value};

use crate::activation::{box_from_word, unbox_to_word, value_matches, SlotKey};
use crate::blacklist::{Blacklist, Verdict};
use crate::config::JitOptions;
use crate::events::{AbortReason, EventLog, TraceEvent};
use crate::exit::{ExitKind, SideExitInfo};
use crate::oracle::Oracle;
use crate::pool::{CompileJob, CompileOutcome, CompilerPool, EmitJob, EmitOutcome, EmitTicket, Ticket};
use crate::profiler::{Activity, Profiler};
use crate::recorder::{self, RecordAction, RecordedTrace, Recorder};
use crate::shared_cache::{entry_digest, SharedCodeCache, SharedKey};
use crate::tree::{Anchor, AnchorKind, ExitState, TraceTree, TreeCache, TreeId, TreeStats};

/// Maximum sibling trees per loop header before the monitor stops
/// recording new type-permutation trees.
const MAX_SIBLING_TREES: usize = 8;

/// Whether an abort reason is *provisional* (demote-only): it counts
/// toward the per-site failure budget but remains eligible for §4.2
/// nesting forgiveness instead of permanently condemning the site.
/// `InnerTreeNotReady`/`InnerTreeCallFailed` mean an inner tree was not
/// compiled (or misbehaved) *yet*; `TooDeep` means recursion exceeded the
/// unroll budget — the site itself is not hostile to tracing, and the
/// recursion paths must be able to retry it once entry trees exist.
pub fn abort_is_provisional(reason: &AbortReason) -> bool {
    matches!(
        reason,
        AbortReason::InnerTreeNotReady
            | AbortReason::InnerTreeCallFailed
            | AbortReason::TooDeep
    )
}

/// Inline monitor state for one loop header.
///
/// Slots live in a dense per-function table indexed by [`LoopId`], so the
/// per-loop-edge work for a warm loop — find a matching compiled tree, or
/// tick the hotness counter — is bounds-checked array indexing with no
/// hashing (the in-memory analogue of the paper's §3.3 bytecode patching,
/// which already removes *blacklisted* headers from the monitor's view).
#[derive(Debug, Clone, Default)]
pub(crate) struct MonitorSlot {
    /// Hotness counter; meaningful only until the loop compiles or is
    /// silenced, after which the state is simply never consulted again.
    hotness: u32,
    /// Sibling trees anchored at this header, in creation order (one per
    /// entry type map; several when the loop is type-unstable, Figure 6).
    pub(crate) trees: Vec<TreeId>,
    /// The header was patched to `Nop` (blacklist / sibling overflow): the
    /// interpreter never reports this loop again, and the monitor must
    /// never touch the slot again either.
    pub(crate) silenced: bool,
    /// A root recording for this anchor is compiling in the background;
    /// the monitor keeps interpreting the loop and must not record a
    /// duplicate until the fragment is installed (or fails).
    pub(crate) compiling: bool,
}

/// The trace monitor.
#[derive(Debug)]
pub struct Monitor {
    /// Compiled trees.
    pub cache: TreeCache,
    /// Blacklist/backoff table.
    pub blacklist: Blacklist,
    /// Integer-demotion oracle.
    pub oracle: Oracle,
    /// Activity profiler (Figures 11/12).
    pub profiler: Profiler,
    /// Trace-event log.
    pub events: EventLog,
    pub(crate) opts: JitOptions,
    /// Dense per-function loop-header monitor state, indexed
    /// `[func][loop_id]`; sized from the installed program on entry to
    /// [`Monitor::run_program`].
    pub(crate) slots: Vec<Vec<MonitorSlot>>,
    /// Set by the nesting host when an inner tree took an unexpected exit,
    /// so the top-level loop can extend the *inner* tree (§4.1).
    pending_inner_exit: Option<(TreeId, u32, u16)>,
    /// Completion value captured when the program finished while a branch
    /// recording was shadowing execution.
    finished_during_recording: Option<Value>,
    /// The process-wide shared code cache and this program's key in it,
    /// when attached (multi-tenant hosts; see [`Monitor::attach_shared`]).
    shared: Option<(Arc<SharedCodeCache>, SharedKey)>,
    /// Sibling digests already installed from (or published to) the
    /// shared cache, so repeated probes never install duplicates.
    shared_seen: HashSet<u64>,
    /// Stable sibling identity per local tree: the digest used at first
    /// publish, reused on republish so branch extensions replace.
    published_digests: HashMap<TreeId, u64>,
    /// Background compiler pool, when attached ([`Monitor::attach_pool`]).
    pool: Option<Arc<CompilerPool>>,
    /// In-flight background compiles awaiting installation at the next
    /// anchor hit.
    in_flight: Vec<PendingCompile>,
    /// Side exits with a branch compile in flight (guards duplicate
    /// branch recordings; cleared on install or failure).
    in_flight_exits: HashSet<(TreeId, u32, u16)>,
    /// Per-tree native x86-64 code, emitted lazily at the first execution
    /// with `native_backend` on and invalidated whenever the tree's
    /// fragments change (branch install). Keyed by local [`TreeId`] —
    /// native buffers are never serialized or shared; trees installed from
    /// the persistent or shared cache get fresh ids and re-emit here.
    native: HashMap<TreeId, NativeState>,
}

/// Cached outcome of attempting native emission for one tree.
#[derive(Debug)]
enum NativeState {
    /// Executable buffer covering every fragment of the tree. Shared
    /// (`Arc`) because the native run needs the buffer alive while the
    /// nesting host re-borrows the monitor for inner-tree calls.
    Ready(Arc<NativeTree>),
    /// The tree contains an op the native emitter does not support (or
    /// emission failed); every execution falls back to the decoded
    /// executor until the tree changes shape.
    Unsupported,
    /// Invalidated by a branch install while the tree is (likely still)
    /// growing: executions count down through the decoded executor and
    /// re-emission happens only once the countdown reaches zero without
    /// another invalidation. Without this, a tree that installs a branch
    /// every few entries pays a whole-tree emission per install — O(n²)
    /// in the final fragment count. The countdown is set proportional to
    /// the tree's fragment count, so re-emission cost (linear in the
    /// fragments) stays amortized against a matching number of decoded
    /// runs however often the tree grows.
    Deferred(u32),
    /// An off-thread emission is in flight on the compiler pool
    /// (`background_compile`); executions fall back to the decoded
    /// executor until the ticket resolves at a later entry
    /// ([`Monitor::poll_native_emission`]). `nfrags` snapshots the
    /// fragment count at submission. A branch install invalidates by
    /// replacing this state (dropping the ticket), so a stale buffer is
    /// discarded unreceived.
    Emitting {
        ticket: EmitTicket,
        nfrags: usize,
    },
}

/// One background compile the monitor is waiting on.
#[derive(Debug)]
struct PendingCompile {
    ticket: Ticket,
    kind: PendingKind,
}

#[derive(Debug, Clone, Copy)]
enum PendingKind {
    /// A root trace for `anchor`.
    Root { anchor: Anchor },
    /// A branch trace extending `(tid, frag, exit)`.
    Branch { tid: TreeId, frag: u32, exit: u16 },
}

enum RecResult {
    Finished,
    Abort(AbortReason),
}

impl Monitor {
    /// Creates a monitor with the given configuration.
    pub fn new(opts: JitOptions) -> Monitor {
        Monitor {
            cache: TreeCache::new(),
            blacklist: Blacklist::new(opts.blacklist),
            oracle: if opts.enable_oracle { Oracle::new() } else { Oracle::disabled() },
            profiler: Profiler::new(opts.profile),
            events: {
                let mut log = EventLog::new();
                log.enabled = opts.log_events;
                log
            },
            opts,
            slots: Vec::new(),
            pending_inner_exit: None,
            finished_during_recording: None,
            shared: None,
            shared_seen: HashSet::new(),
            published_digests: HashMap::new(),
            pool: None,
            in_flight: Vec::new(),
            in_flight_exits: HashSet::new(),
            native: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn options(&self) -> &JitOptions {
        &self.opts
    }

    /// Attaches the process-wide shared code cache: compiled trees this
    /// monitor produces are published under `key`, and hot anchors probe
    /// the cache before recording (the multi-tenant fragment dedup).
    pub fn attach_shared(&mut self, cache: Arc<SharedCodeCache>, key: SharedKey) {
        self.shared = Some((cache, key));
    }

    /// Attaches a background compiler pool: finished recordings are
    /// compiled off-thread and installed at the next anchor hit, while
    /// the realm keeps interpreting. Without a pool (or with
    /// [`JitOptions::background_compile`] off) compilation is
    /// synchronous, exactly as before.
    pub fn attach_pool(&mut self, pool: Arc<CompilerPool>) {
        self.pool = Some(pool);
    }

    /// The pool to submit to, when background compilation is active.
    fn async_pool(&self) -> Option<Arc<CompilerPool>> {
        if !self.opts.background_compile {
            return None;
        }
        self.pool.clone()
    }

    /// Runs a program under mixed-mode execution until completion.
    ///
    /// # Errors
    ///
    /// Propagates guest [`RuntimeError`]s.
    pub fn run_program(
        &mut self,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<Value, RuntimeError> {
        interp.monitor_enabled = true;
        self.ensure_slots(interp);
        self.profiler.switch(Activity::Interpret);
        let result = loop {
            match interp.run(realm) {
                Ok(RunExit::Finished(v)) => break Ok(v),
                Ok(RunExit::LoopEdge { func, header_pc, loop_id }) => {
                    self.profiler.switch(Activity::Monitor);
                    match self.on_loop_edge(
                        Anchor::loop_header(func, header_pc, loop_id),
                        interp,
                        realm,
                    ) {
                        Ok(None) => {}
                        Ok(Some(v)) => break Ok(v),
                        Err(e) => break Err(e),
                    }
                    if let Some(v) = self.finished_during_recording.take() {
                        break Ok(v);
                    }
                    self.profiler.switch(Activity::Interpret);
                }
                Ok(RunExit::RecursiveCall { func }) => {
                    self.profiler.switch(Activity::Monitor);
                    let nloops = interp.prog().function(func).loops.len();
                    match self.on_loop_edge(Anchor::func_entry(func, nloops), interp, realm)
                    {
                        Ok(None) => {}
                        Ok(Some(v)) => break Ok(v),
                        Err(e) => break Err(e),
                    }
                    if let Some(v) = self.finished_during_recording.take() {
                        break Ok(v);
                    }
                    self.profiler.switch(Activity::Interpret);
                }
                Err(e) => break Err(e),
            }
        };
        // Drain in-flight background compiles so the monitor's final
        // state (trees, counters, the persisted image) is deterministic
        // regardless of worker timing.
        if !self.in_flight.is_empty() {
            self.drain_compiles(interp);
        }
        self.profiler.stats.bytecodes_interp = interp.ops_executed
            - self.profiler.stats.bytecodes_recorded;
        self.profiler.stats.ic = interp.ic_stats;
        self.profiler.stop();
        result
    }

    /// Sizes the dense slot table to the installed program: one slot per
    /// loop per function, plus one extra slot per function for its
    /// function-entry (recursion) anchor. Idempotent; re-running the same
    /// interpreter keeps accumulated state.
    pub(crate) fn ensure_slots(&mut self, interp: &Interp) {
        let prog = interp.prog();
        if self.slots.len() < prog.functions.len() {
            self.slots.resize_with(prog.functions.len(), Vec::new);
        }
        for (f, slots) in self.slots.iter_mut().enumerate() {
            let nslots = prog.functions[f].loops.len() + 1;
            if slots.len() < nslots {
                slots.resize_with(nslots, MonitorSlot::default);
            }
        }
    }

    /// Finds a matching compiled tree for `anchor` through its dense
    /// monitor slot (no hash lookup; the hot trace-cache probe of §6.1).
    fn find_match_slot(
        &self,
        anchor: Anchor,
        realm: &Realm,
        interp: &Interp,
    ) -> Option<TreeId> {
        let slot = &self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize];
        slot.trees.iter().copied().find(|&id| {
            let t = self.cache.tree(id);
            !t.disabled && t.entry_matches(realm, interp)
        })
    }

    /// Handles one loop-edge crossing. Returns `Ok(Some(value))` if the
    /// program finished during recording.
    fn on_loop_edge(
        &mut self,
        anchor: Anchor,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<Option<Value>, RuntimeError> {
        // 0. Background-compiled fragments ready? Install them now — the
        // "next anchor hit" of the compiler-pool handoff. Cheap when
        // nothing is in flight (a Vec emptiness check).
        if !self.in_flight.is_empty() {
            self.poll_compiles(interp);
        }

        // 1. A matching compiled tree? Enter it. Pure dense-slot work.
        if let Some(tid) = self.find_match_slot(anchor, realm, interp) {
            self.profiler.stats.monitor_slot_fast += 1;
            self.run_tree(tid, interp, realm)?;
            return Ok(None);
        }

        // 2. Hotness counting: an inline counter in the loop's slot.
        {
            let slot =
                &mut self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize];
            debug_assert!(!slot.silenced, "silenced headers are patched to Nop");
            slot.hotness += 1;
            if slot.hotness < self.opts.hotness_threshold {
                self.profiler.stats.monitor_slot_fast += 1;
                return Ok(None);
            }
        }

        // Past the threshold: the slow machinery (sibling policy, backoff
        // tables, recording). Warm loops never reach this point again.
        self.profiler.stats.monitor_slot_slow += 1;
        let slot = &self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize];
        if slot.compiling {
            // A root trace for this anchor is compiling in the background;
            // keep interpreting until it lands.
            return Ok(None);
        }
        if slot.trees.len() >= MAX_SIBLING_TREES {
            if slot.trees.iter().all(|&t| self.cache.tree(t).disabled) {
                // Every type permutation of this loop proved unprofitable:
                // silence the monitor permanently (§3.3).
                self.silence_header(anchor, interp);
            }
            return Ok(None);
        }

        // 3. Blacklist / backoff.
        match self.blacklist.check(anchor.site_key()) {
            Verdict::Blacklisted => {
                self.silence_header(anchor, interp);
                return Ok(None);
            }
            Verdict::Skip => return Ok(None),
            Verdict::Record => {}
        }

        // 3.5. Before paying to record: did another realm already compile
        // this anchor? Install every new shared-cache sibling and enter
        // one if it matches the current types.
        if self.try_shared_install(anchor) {
            if let Some(tid) = self.find_match_slot(anchor, realm, interp) {
                self.run_tree(tid, interp, realm)?;
                return Ok(None);
            }
        }

        // 4. Record a root trace.
        self.record_root(anchor, interp, realm)
    }

    /// Probes the shared code cache for `anchor`, installing every
    /// sibling not yet present locally. Returns whether anything new was
    /// installed.
    fn try_shared_install(&mut self, anchor: Anchor) -> bool {
        let Some((cache, key)) = self.shared.clone() else { return false };
        let found = cache.lookup(key, anchor);
        if found.is_empty() {
            self.profiler.stats.shared_cache_misses += 1;
            return false;
        }
        self.profiler.stats.shared_cache_hits += 1;
        let mut installed = false;
        for shared_tree in found {
            if !self.shared_seen.insert(shared_tree.digest) {
                continue;
            }
            let tid = self.cache.insert(shared_tree.instantiate());
            self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize]
                .trees
                .push(tid);
            self.published_digests.insert(tid, shared_tree.digest);
            self.profiler.stats.shared_cache_installed_trees += 1;
            installed = true;
        }
        installed
    }

    /// Publishes tree `tid` to the shared code cache (no-op without an
    /// attached cache, or for trees with nested-call sites).
    pub(crate) fn publish_shared(&mut self, tid: TreeId) {
        let Some((cache, key)) = self.shared.clone() else { return };
        let tree = self.cache.tree(tid);
        let digest = match self.published_digests.get(&tid) {
            Some(&d) => d,
            None => {
                let d = entry_digest(tree.anchor, &tree.entry);
                self.published_digests.insert(tid, d);
                d
            }
        };
        if cache.publish(key, digest, self.cache.tree(tid)) {
            self.shared_seen.insert(digest);
            self.profiler.stats.shared_cache_publishes += 1;
        }
    }

    fn anchor_range(&self, anchor: Anchor, interp: &Interp) -> (u32, u32) {
        let f = interp.prog().function(anchor.func);
        match anchor.kind {
            AnchorKind::LoopHeader => {
                let l = f.loop_with_header(anchor.pc).expect("anchor is a loop header");
                (l.header, l.end)
            }
            // An entry anchor "contains" the whole function body.
            AnchorKind::FuncEntry => (0, f.code.len() as u32),
        }
    }

    fn record_root(
        &mut self,
        anchor: Anchor,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<Option<Value>, RuntimeError> {
        self.events.push(TraceEvent::RecordStartRoot { func: anchor.func, pc: anchor.pc });
        let range = self.anchor_range(anchor, interp);
        let mut rec = Recorder::new_root(anchor, range, interp, self.opts);
        self.profiler.switch(Activity::Record);
        let rec_start_ops = interp.ops_executed;
        let outcome = self.record_loop(&mut rec, interp, realm);
        self.profiler.stats.bytecodes_recorded += interp.ops_executed - rec_start_ops;
        self.profiler.switch(Activity::Monitor);
        match outcome {
            Ok(RecResult::Finished) => {
                let recorded = rec.into_recorded();
                if self.opts.verify {
                    if let Err(err) = recorded.verify(&[]) {
                        self.handle_record_failure(
                            anchor,
                            AbortReason::VerifyFailed(err),
                            interp,
                        );
                        return Ok(None);
                    }
                }
                if let Some(pool) = self.async_pool() {
                    // Hand the pipeline to a worker; the realm goes back
                    // to interpreting and the tree is installed at a
                    // later anchor hit (`poll_compiles`).
                    let ticket = pool.submit(CompileJob {
                        recorded,
                        verify_base: Vec::new(),
                        opts: self.opts,
                    });
                    self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize]
                        .compiling = true;
                    self.in_flight.push(PendingCompile {
                        ticket,
                        kind: PendingKind::Root { anchor },
                    });
                    self.profiler.stats.compile_jobs_submitted += 1;
                    return Ok(None);
                }
                self.build_root_tree(anchor, recorded);
                self.forgive_outer_loops(anchor, interp);
                Ok(None)
            }
            Ok(RecResult::Abort(reason)) => {
                self.handle_record_failure(anchor, reason, interp);
                Ok(None)
            }
            Err(RecordError::Guest(e)) => Err(e),
            Err(RecordError::ProgramFinished(v)) => Ok(Some(v)),
        }
    }

    fn handle_record_failure(&mut self, anchor: Anchor, reason: AbortReason, interp: &mut Interp) {
        self.events.push(TraceEvent::RecordAbort { reason });
        self.profiler.stats.traces_aborted += 1;
        if self.blacklist.record_failure(anchor.site_key(), abort_is_provisional(&reason)) {
            self.silence_header(anchor, interp);
        }
    }

    /// Silences the anchor permanently: a loop header is patched to `Nop`,
    /// a function-entry anchor stops the interpreter's recursion reports.
    /// Either way its monitor slot is marked silenced — neither the
    /// interpreter nor the monitor will ever touch this anchor again.
    pub(crate) fn silence_header(&mut self, anchor: Anchor, interp: &mut Interp) {
        match anchor.kind {
            AnchorKind::LoopHeader => interp.patch_loop_header(anchor.func, anchor.pc),
            AnchorKind::FuncEntry => interp.silence_recursion(anchor.func),
        }
        self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize].silenced = true;
        let (_, site_pc) = anchor.site_key();
        self.events.push(TraceEvent::Blacklist { func: anchor.func, pc: site_pc });
    }

    /// §4.2: an inner tree completed a trace; forgive outer loops that
    /// aborted waiting for it. The function-entry anchor encloses every
    /// loop in the function, so it is always forgiven alongside them.
    fn forgive_outer_loops(&mut self, anchor: Anchor, interp: &Interp) {
        let f = interp.prog().function(anchor.func);
        let mut outer_headers: Vec<u32> = f
            .loops
            .iter()
            .filter(|l| l.contains_pc(anchor.pc) && l.header != anchor.pc)
            .map(|l| l.header)
            .collect();
        if anchor.kind == AnchorKind::LoopHeader {
            outer_headers.push(crate::tree::ENTRY_SITE_PC);
        }
        self.blacklist.forgive_outer(anchor.func, &outer_headers);
    }

    /// Drives one recording to completion, stepping the interpreter.
    fn record_loop(
        &mut self,
        rec: &mut Recorder,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<RecResult, RecordError> {
        loop {
            match rec.record_op(interp, realm, &self.oracle) {
                RecordAction::Step { observe } => match interp.step(realm) {
                    // `RecursiveCall` is informational: while recording, the
                    // recorder has already shadowed the call in `record_call`.
                    Ok(Flow::Normal | Flow::LoopHeader(_) | Flow::RecursiveCall { .. }) => {
                        if observe {
                            rec.after_step(interp, realm);
                        }
                    }
                    Ok(Flow::Finished(v)) => return Err(RecordError::ProgramFinished(v)),
                    Err(e) => return Err(RecordError::Guest(e)),
                },
                RecordAction::Finished => {
                    self.profiler.stats.traces_completed += 1;
                    return Ok(RecResult::Finished);
                }
                RecordAction::Abort(reason) => return Ok(RecResult::Abort(reason)),
                RecordAction::InnerLoop { func, pc, loop_id } => {
                    match self.handle_inner_loop(
                        rec,
                        Anchor::loop_header(func, pc, loop_id),
                        interp,
                        realm,
                    )? {
                        Ok(()) => {
                            // Nested call recorded; the step that brought
                            // us to the inner header was the LoopHeader op,
                            // which the recorder never steps — the inner
                            // tree execution advanced the interpreter.
                        }
                        Err(reason) => return Ok(RecResult::Abort(reason)),
                    }
                }
            }
        }
    }

    /// Attempts a nested tree call while recording (§4.1).
    #[allow(clippy::type_complexity)]
    fn handle_inner_loop(
        &mut self,
        rec: &mut Recorder,
        inner_anchor: Anchor,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<Result<(), AbortReason>, RecordError> {
        if !self.opts.enable_nesting {
            return Ok(Err(AbortReason::InnerTreeNotReady));
        }
        let Some(tid) = self.find_match_slot(inner_anchor, realm, interp) else {
            // "We simply abort recording the first trace. The trace
            // monitor will see the inner loop header, and will immediately
            // start recording the inner loop."
            return Ok(Err(AbortReason::InnerTreeNotReady));
        };
        rec.begin_nested(inner_anchor.pc);
        // The LoopHeader op at the inner header has *not* been stepped;
        // step past it so interpreter state matches a normal tree entry.
        match interp.step(realm) {
            Ok(Flow::LoopHeader(_) | Flow::Normal | Flow::RecursiveCall { .. }) => {}
            Ok(Flow::Finished(v)) => return Err(RecordError::ProgramFinished(v)),
            Err(e) => return Err(RecordError::Guest(e)),
        }
        self.events.push(TraceEvent::NestedCall { tree: tid.0 });
        let (frag, exit, kind) = match self.execute_tree_once(tid, interp, realm) {
            Ok(r) => r,
            Err(e) => return Err(RecordError::Guest(e)),
        };
        let acceptable = matches!(kind, ExitKind::Branch | ExitKind::LeaveLoop)
            && self.cache.tree(tid).exits[frag as usize][exit as usize].frames.len() == 1;
        if !acceptable {
            rec.cancel_nested();
            return Ok(Err(AbortReason::InnerTreeCallFailed));
        }
        let stack_depth =
            self.cache.tree(tid).exits[frag as usize][exit as usize].frames[0].stack_depth;
        rec.finish_nested_with_stack(tid, (frag, exit), stack_depth, interp);
        Ok(Ok(()))
    }

    // ==== tree construction ====

    /// `verify_base` is the fragment's pre-existing entry state (empty for
    /// a root trace; the parent exit's type map plus the tree entry map
    /// for a branch), used only for the post-filter verification pass.
    fn compile_fragment(
        &mut self,
        recorded: &mut RecordedTrace,
        verify_base: &[(tm_lir::ArSlot, tm_lir::LirType)],
    ) -> Fragment {
        self.profiler.switch(Activity::Compile);
        let liveness = ExitLiveness {
            live_slots: recorded.exits.iter().map(SideExitInfo::live_slots).collect(),
        };
        run_backward_filters(&mut recorded.lir, &liveness, &recorded.loop_live);
        if self.opts.verify {
            // The recorder's output was already verified; what is handed
            // to the backend is re-checked so a backward-filter defect
            // (bad id compaction, dropped store an exit needs) surfaces
            // here instead of as compiled garbage.
            if let Err(err) = recorded.verify(verify_base) {
                panic!("backward filters produced a malformed trace: {err}");
            }
        }
        let mut frag = assemble(&recorded.lir);
        if self.opts.enable_fusion {
            frag = tm_nanojit::fuse(frag);
            self.profiler.stats.fused_superinsts +=
                u64::from(frag.fuse_stats.superinsts);
            self.profiler.stats.fuse_insts_removed +=
                u64::from(frag.fuse_stats.raw_insts - frag.fuse_stats.fused_insts);
        }
        if self.opts.verify {
            // Backend output check: register allocation and the peephole
            // pass must hand the executor structurally sound code.
            if let Err(err) = tm_verifier::verify_fragment(&frag) {
                panic!("backend produced a malformed fragment: {err}");
            }
        }
        self.profiler.stats.fragments += 1;
        self.profiler.switch(Activity::Monitor);
        frag
    }

    /// Rolls a completed recording's typed fast-call sites into the
    /// per-builtin trace counters.
    fn count_fast_helpers(&mut self, recorded: &mut RecordedTrace) {
        for h in recorded.fast_helpers.drain(..) {
            *self
                .profiler
                .stats
                .builtin_fast_records
                .entry(format!("{h:?}"))
                .or_insert(0) += 1;
        }
    }

    fn build_root_tree(&mut self, anchor: Anchor, mut recorded: RecordedTrace) -> TreeId {
        self.count_fast_helpers(&mut recorded);
        let frag = self.compile_fragment(&mut recorded, &[]);
        self.install_root_tree(anchor, recorded, frag)
    }

    /// Installs a compiled root fragment as a new tree: the tail of
    /// `build_root_tree`, shared with the background-compile install path
    /// (`poll_compiles`), which arrives here with a worker-built fragment.
    fn install_root_tree(
        &mut self,
        anchor: Anchor,
        mut recorded: RecordedTrace,
        frag: Fragment,
    ) -> TreeId {
        for m in recorded.oracle_marks.drain(..) {
            self.oracle.mark_double(m);
        }
        let unstable = recorded.finish == recorder::FinishKind::UnstableLoop;
        let exit_states = vec![vec![ExitState::default(); recorded.exits.len()]];
        let tree = TraceTree {
            id: TreeId(0), // assigned by the cache
            anchor,
            layout: recorded.layout,
            entry: recorded.new_entry,
            fragments: Arc::new(vec![frag]),
            exits: vec![recorded.exits],
            fragment_bytecodes: vec![recorded.bytecodes],
            exit_states,
            frag_entry_reqs: Vec::new(),
            nested_sites: recorded.nested_sites,
            loop_writes: recorded.loop_writes,
            lir: if self.opts.log_events { vec![recorded.lir] } else { vec![] },
            unstable,
            disabled: false,
            stats: TreeStats::default(),
        };
        let tid = self.cache.insert(tree);
        {
            let t = self.cache.tree_mut(tid);
            let reqs = t.entry.iter().map(|e| (e.ar, e.key, e.ty)).collect();
            t.frag_entry_reqs.push(reqs);
        }
        // Register the sibling in the loop's dense monitor slot — the
        // structure the hot loop-edge path consults.
        self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize].trees.push(tid);
        self.profiler.stats.trees += 1;
        self.events.push(TraceEvent::RecordFinish {
            tree: tid.0,
            fragment: 0,
            lir_len: self.cache.tree(tid).fragments[0].len() as u32,
        });
        self.publish_shared(tid);
        tid
    }

    /// Entry requirements for monitor-mediated entry at a branch fragment
    /// stitched to `(parent_frag, parent_exit)`: everything the parent
    /// exit's type map describes plus the tree's entry slots. Doubles as
    /// the entry base for trace verification.
    fn branch_parent_reqs(
        &self,
        tid: TreeId,
        parent_frag: u32,
        parent_exit: u16,
    ) -> Vec<(tm_lir::ArSlot, SlotKey, tm_lir::LirType)> {
        let tree = self.cache.tree(tid);
        let mut reqs = tree.exits[parent_frag as usize][parent_exit as usize]
            .typemap
            .clone();
        for e in &tree.entry {
            if !reqs.iter().any(|&(a, _, _)| a == e.ar) {
                reqs.push((e.ar, e.key, e.ty));
            }
        }
        reqs
    }

    fn attach_branch(
        &mut self,
        tid: TreeId,
        parent_frag: u32,
        parent_exit: u16,
        mut recorded: RecordedTrace,
    ) {
        self.count_fast_helpers(&mut recorded);
        let verify_base: Vec<(tm_lir::ArSlot, tm_lir::LirType)> = self
            .branch_parent_reqs(tid, parent_frag, parent_exit)
            .iter()
            .map(|&(s, _, t)| (s, t))
            .collect();
        let frag = self.compile_fragment(&mut recorded, &verify_base);
        self.install_branch(tid, parent_frag, parent_exit, recorded, frag);
    }

    /// Installs a compiled branch fragment: the tail of `attach_branch`,
    /// shared with the background-compile install path.
    fn install_branch(
        &mut self,
        tid: TreeId,
        parent_frag: u32,
        parent_exit: u16,
        mut recorded: RecordedTrace,
        frag: Fragment,
    ) {
        let parent_reqs = self.branch_parent_reqs(tid, parent_frag, parent_exit);
        for m in recorded.oracle_marks.drain(..) {
            self.oracle.mark_double(m);
        }
        // The tree's fragment set is about to change (new fragment plus a
        // patched stitch target): drop any native buffer (or in-flight
        // emission ticket — the worker's now-stale result is simply never
        // received), and defer the re-emission for as many executions as
        // the tree has fragments so a tree in its growth phase doesn't
        // re-emit per install.
        if self.opts.native_backend {
            let delay = self.cache.tree(tid).fragments.len() as u32 + 1;
            self.native.insert(tid, NativeState::Deferred(delay.max(2)));
        }
        let stitch = self.opts.enable_stitching;
        let tree = self.cache.tree_mut(tid);
        let new_idx = tree.fragments.len() as u32;
        {
            let frags = Arc::make_mut(&mut tree.fragments);
            frags.push(frag);
            if stitch {
                frags[parent_frag as usize]
                    .set_exit_target(parent_exit, ExitTarget::Fragment(new_idx));
            }
        }
        tree.exit_states[parent_frag as usize][parent_exit as usize].branch = Some(new_idx);
        tree.frag_entry_reqs.push(parent_reqs);
        tree.layout = recorded.layout;
        for e in recorded.new_entry {
            if !tree.entry.iter().any(|x| x.ar == e.ar) {
                tree.entry.push(e);
                // Every fragment's monitor-entry requirements must cover
                // every entry slot: fragments reached by stitching or
                // loop-back may read slots this fragment's own path never
                // touches.
                for reqs in &mut tree.frag_entry_reqs {
                    if !reqs.iter().any(|&(a, _, _)| a == e.ar) {
                        reqs.push((e.ar, e.key, e.ty));
                    }
                }
            }
        }
        // The branch's exits must also restore the *tree's* loop-persistent
        // writes (slots written by the trunk after the branch point carry
        // stale values from earlier iterations), and vice versa: existing
        // exits must restore the branch's new loop writes.
        let mut branch_exits = recorded.exits;
        for e in &mut branch_exits {
            crate::recorder::union_writes(&mut e.write_back, &tree.loop_writes);
            crate::recorder::union_writes(&mut e.typemap, &tree.loop_writes);
        }
        let mut new_loop_writes = tree.loop_writes.clone();
        crate::recorder::union_writes(&mut new_loop_writes, &recorded.loop_writes);
        if new_loop_writes.len() != tree.loop_writes.len() {
            for frag_exits in &mut tree.exits {
                for e in frag_exits {
                    crate::recorder::union_writes(&mut e.write_back, &new_loop_writes);
                    crate::recorder::union_writes(&mut e.typemap, &new_loop_writes);
                }
            }
            for site in &mut tree.nested_sites {
                crate::recorder::union_writes(&mut site.callsite.write_back, &new_loop_writes);
                crate::recorder::union_writes(&mut site.callsite.typemap, &new_loop_writes);
            }
        }
        tree.loop_writes = new_loop_writes;
        tree.exit_states.push(vec![ExitState::default(); branch_exits.len()]);
        tree.exits.push(branch_exits);
        if self.opts.log_events {
            tree.lir.push(recorded.lir);
        }
        tree.fragment_bytecodes.push(recorded.bytecodes);
        tree.nested_sites.extend(recorded.nested_sites);
        self.events.push(TraceEvent::Stitch {
            tree: tid.0,
            from_fragment: parent_frag,
            exit: parent_exit,
            to_fragment: new_idx,
        });
        self.events.push(TraceEvent::RecordFinish {
            tree: tid.0,
            fragment: new_idx,
            lir_len: self.cache.tree(tid).fragments[new_idx as usize].len() as u32,
        });
        // Republish: the tree grew a fragment, so realms installing it
        // from the shared cache later get the extended version.
        self.publish_shared(tid);
    }

    // ==== tree execution ====

    /// Runs a tree from the monitor, handling exits, branch extension, and
    /// type-stability transfers until control must return to the
    /// interpreter.
    fn run_tree(
        &mut self,
        mut tid: TreeId,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<(), RuntimeError> {
        let mut transfers = 0usize;
        let mut start = 0u32;
        loop {
            self.events.push(TraceEvent::EnterTree { tree: tid.0 });
            let Some((frag, exit, kind)) = self.execute_tree_from(tid, start, interp, realm)?
            else {
                return Ok(()); // entry requirements not met: interpret
            };
            start = 0;
            match kind {
                ExitKind::LoopEdge => {
                    // Preemption or pending GC at the loop edge (§6.4).
                    if realm.heap.gc_pending || realm.heap.should_collect() {
                        let roots = interp.roots();
                        realm.collect_garbage(&roots);
                    }
                    if realm.interrupt {
                        return Err(RuntimeError::Interrupted);
                    }
                    // Re-enter if still matching (the common case) — via
                    // the dense slot, not the anchor hash.
                    if let Some(next) =
                        self.find_match_slot(self.cache.tree(tid).anchor, realm, interp)
                    {
                        tid = next;
                        continue;
                    }
                    return Ok(());
                }
                ExitKind::Unstable => {
                    // Figure 6: look for a sibling tree whose entry map
                    // matches the exit state.
                    if !self.opts.enable_stability_linking {
                        return Ok(());
                    }
                    let anchor = self.cache.tree(tid).anchor;
                    if let Some(next) = self.find_match_slot(anchor, realm, interp) {
                        transfers += 1;
                        if next != tid {
                            self.events
                                .push(TraceEvent::StableTransfer { from_tree: tid.0, to_tree: next.0 });
                        }
                        if transfers < 1_000_000 {
                            tid = next;
                            continue;
                        }
                    }
                    return Ok(());
                }
                ExitKind::Branch => {
                    if !self.opts.enable_stitching {
                        // §6.2's alternative to stitching: call the branch
                        // fragment from the monitor, paying the transition
                        // cost stitching avoids.
                        if let Some(bfrag) =
                            self.cache.tree(tid).exit_state(frag, exit).branch
                        {
                            start = bfrag;
                            continue;
                        }
                    }
                    self.maybe_extend(tid, frag, exit, interp, realm)?;
                    return Ok(());
                }
                ExitKind::NestedUnexpected => {
                    // §4.1: "we simply exit the outer trace and start
                    // recording a new branch in the inner tree."
                    if let Some((itid, ifrag, iexit)) = self.pending_inner_exit.take() {
                        let ikind =
                            self.cache.tree(itid).exits[ifrag as usize][iexit as usize].kind;
                        if ikind == ExitKind::Branch {
                            self.maybe_extend(itid, ifrag, iexit, interp, realm)?;
                        }
                    }
                    return Ok(());
                }
                ExitKind::LeaveLoop | ExitKind::DeepBail => return Ok(()),
            }
        }
    }

    /// Counts a side exit and records a branch trace when it becomes hot.
    fn maybe_extend(
        &mut self,
        tid: TreeId,
        frag: u32,
        exit: u16,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<(), RuntimeError> {
        if self.in_flight_exits.iter().any(|&(t, _, _)| t == tid) {
            // A branch of this tree is already compiling in the
            // background. Branch recordings extend the tree's AR layout
            // from its current state, so two in-flight branches of one
            // tree would both extend the *same* base layout and the
            // second install would clobber the first's slots (observed as
            // out-of-bounds AR accesses). One in-flight branch per tree.
            return Ok(());
        }
        {
            let tree = self.cache.tree_mut(tid);
            if tree.fragments.len() >= self.opts.max_fragments_per_tree {
                return Ok(());
            }
            let max_failures = self.opts.blacklist.max_failures;
            let hot = self.opts.hot_exit_threshold;
            let st = tree.exit_state_mut(frag, exit);
            if st.branch.is_some() {
                // Already extended (reachable only via the monitor when
                // stitching is disabled).
                return Ok(());
            }
            if st.failures >= max_failures {
                return Ok(());
            }
            st.counter += 1;
            if st.counter < hot {
                return Ok(());
            }
        }
        // §4.1: an exit some nested-call site expects is the return
        // contract of every outer tree calling this one. Stitching a
        // branch there would carry the inner tree straight past the exit
        // the callers guard on, so every nested call would side-exit
        // (`NestedUnexpected`) and §3.3 would disable the callers one by
        // one. Refuse, permanently.
        if self.exit_is_nested_contract(tid, frag, exit) {
            let max_failures = self.opts.blacklist.max_failures;
            let st = self.cache.tree_mut(tid).exit_state_mut(frag, exit);
            st.failures = max_failures;
            st.counter = 0;
            return Ok(());
        }
        // A hot integer-overflow guard means the int speculation at that
        // arithmetic site keeps failing: demote it (§3.2's oracle, applied
        // per site) so future recordings take the double path directly.
        if let Some(site) =
            self.cache.tree(tid).exits[frag as usize][exit as usize].arith_site
        {
            self.oracle.mark_site(site);
        }
        let anchor = self.cache.tree(tid).anchor;
        let range = self.anchor_range(anchor, interp);
        self.events.push(TraceEvent::RecordStartBranch { func: anchor.func, pc: anchor.pc });
        let (layout, entry, site_base, parent_exit) = {
            let tree = self.cache.tree(tid);
            (
                tree.layout.clone(),
                tree.entry.clone(),
                tree.nested_sites.len() as u32,
                tree.exits[frag as usize][exit as usize].clone(),
            )
        };
        // The branch fragment enters with everything the parent path
        // established (its exit type map) plus the tree's entry slots —
        // the base state the verifier checks imports and exit maps
        // against.
        let verify_base: Vec<(tm_lir::ArSlot, tm_lir::LirType)> = if self.opts.verify {
            let mut base: Vec<(tm_lir::ArSlot, tm_lir::LirType)> =
                parent_exit.typemap.iter().map(|&(s, _, t)| (s, t)).collect();
            for e in &entry {
                if !base.iter().any(|&(s, _)| s == e.ar) {
                    base.push((e.ar, e.ty));
                }
            }
            base
        } else {
            Vec::new()
        };
        let mut rec = Recorder::new_branch(
            anchor,
            range,
            layout,
            entry,
            &parent_exit,
            site_base,
            interp,
            self.opts,
        );
        self.profiler.switch(Activity::Record);
        let rec_start_ops = interp.ops_executed;
        let outcome = self.record_loop(&mut rec, interp, realm);
        self.profiler.stats.bytecodes_recorded += interp.ops_executed - rec_start_ops;
        self.profiler.switch(Activity::Monitor);
        match outcome {
            Ok(RecResult::Finished) => {
                let recorded = rec.into_recorded();
                if self.opts.verify {
                    if let Err(err) = recorded.verify(&verify_base) {
                        self.events.push(TraceEvent::RecordAbort {
                            reason: AbortReason::VerifyFailed(err),
                        });
                        self.profiler.stats.traces_aborted += 1;
                        self.record_exit_failure(tid, frag, exit);
                        return Ok(());
                    }
                }
                if let Some(pool) = self.async_pool() {
                    let ticket = pool.submit(CompileJob {
                        recorded,
                        verify_base,
                        opts: self.opts,
                    });
                    self.in_flight_exits.insert((tid, frag, exit));
                    self.in_flight.push(PendingCompile {
                        ticket,
                        kind: PendingKind::Branch { tid, frag, exit },
                    });
                    self.profiler.stats.compile_jobs_submitted += 1;
                    return Ok(());
                }
                self.attach_branch(tid, frag, exit, recorded);
                Ok(())
            }
            Ok(RecResult::Abort(reason)) => {
                self.events.push(TraceEvent::RecordAbort { reason });
                self.profiler.stats.traces_aborted += 1;
                self.record_exit_failure(tid, frag, exit);
                Ok(())
            }
            Err(RecordError::Guest(e)) => Err(e),
            Err(RecordError::ProgramFinished(v)) => {
                self.finished_during_recording = Some(v);
                Ok(())
            }
        }
    }

    /// Whether `(frag, exit)` of tree `tid` is the `expected_exit` of any
    /// nested-call site — i.e. an exit outer trees rely on the inner tree
    /// returning through. Such exits must never be stitched.
    fn exit_is_nested_contract(&self, tid: TreeId, frag: u32, exit: u16) -> bool {
        self.cache.iter().any(|t| {
            t.nested_sites
                .iter()
                .any(|s| s.inner == tid && s.expected_exit == (frag, exit))
        })
    }

    /// Counts a branch-recording failure at `(frag, exit)`. At the
    /// blacklist threshold the exit stops being extended; its hotness
    /// counter is cleared so dead exits don't keep live state around.
    fn record_exit_failure(&mut self, tid: TreeId, frag: u32, exit: u16) {
        let max_failures = self.opts.blacklist.max_failures;
        let st = self.cache.tree_mut(tid).exit_state_mut(frag, exit);
        st.failures += 1;
        if st.failures >= max_failures {
            st.counter = 0;
        }
    }

    // ==== background compilation ====

    /// Non-blocking sweep over in-flight compile jobs, installing every
    /// finished fragment. Called on each anchor hit (the handoff point:
    /// "installing at the next anchor hit").
    fn poll_compiles(&mut self, interp: &mut Interp) {
        let mut i = 0;
        while i < self.in_flight.len() {
            match self.in_flight[i].ticket.try_ready() {
                None => i += 1,
                Some(outcome) => {
                    let pending = self.in_flight.swap_remove(i);
                    self.finish_compile(pending.kind, outcome, interp);
                }
            }
        }
    }

    /// Blocking drain, called when the program finishes: the monitor's
    /// final state (trees, counters, the persisted cache image) must not
    /// depend on how fast the workers were.
    fn drain_compiles(&mut self, interp: &mut Interp) {
        while let Some(pending) = self.in_flight.pop() {
            let outcome = pending.ticket.wait();
            self.finish_compile(pending.kind, outcome, interp);
        }
    }

    /// Absorbs one finished background compile: install on success,
    /// site-failure accounting on pipeline failure (mirroring the sync
    /// path's abort handling).
    fn finish_compile(
        &mut self,
        kind: PendingKind,
        outcome: CompileOutcome,
        interp: &mut Interp,
    ) {
        match (kind, outcome) {
            (PendingKind::Root { anchor }, CompileOutcome::Done { recorded, fragment }) => {
                self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize]
                    .compiling = false;
                let mut recorded = *recorded;
                self.count_fast_helpers(&mut recorded);
                self.absorb_compiled_fragment_stats(&fragment);
                self.install_root_tree(anchor, recorded, *fragment);
                self.forgive_outer_loops(anchor, interp);
                self.profiler.stats.compile_jobs_installed += 1;
            }
            (PendingKind::Root { anchor }, CompileOutcome::Failed(_)) => {
                self.slots[anchor.func.0 as usize][anchor.loop_id.0 as usize]
                    .compiling = false;
                self.profiler.stats.compile_jobs_failed += 1;
                self.handle_record_failure(anchor, AbortReason::CompileFailed, interp);
            }
            (
                PendingKind::Branch { tid, frag, exit },
                CompileOutcome::Done { recorded, fragment },
            ) => {
                self.in_flight_exits.remove(&(tid, frag, exit));
                if self.cache.tree(tid).exit_states[frag as usize][exit as usize]
                    .branch
                    .is_some()
                {
                    // Raced with another install path (e.g. the whole tree
                    // arrived from the shared cache meanwhile); drop it.
                    return;
                }
                let mut recorded = *recorded;
                self.count_fast_helpers(&mut recorded);
                self.absorb_compiled_fragment_stats(&fragment);
                self.install_branch(tid, frag, exit, recorded, *fragment);
                self.profiler.stats.compile_jobs_installed += 1;
            }
            (PendingKind::Branch { tid, frag, exit }, CompileOutcome::Failed(_)) => {
                self.in_flight_exits.remove(&(tid, frag, exit));
                self.events.push(TraceEvent::RecordAbort {
                    reason: AbortReason::CompileFailed,
                });
                self.profiler.stats.traces_aborted += 1;
                self.profiler.stats.compile_jobs_failed += 1;
                self.record_exit_failure(tid, frag, exit);
            }
        }
    }

    /// The profiler accounting `compile_fragment` does inline, replayed
    /// for a fragment that was compiled on a worker thread.
    fn absorb_compiled_fragment_stats(&mut self, frag: &Fragment) {
        if self.opts.enable_fusion {
            self.profiler.stats.fused_superinsts += u64::from(frag.fuse_stats.superinsts);
            self.profiler.stats.fuse_insts_removed +=
                u64::from(frag.fuse_stats.raw_insts - frag.fuse_stats.fused_insts);
        }
        self.profiler.stats.fragments += 1;
    }

    /// Enters tree `tid` at its trunk: builds the activation record from
    /// interpreter state, executes fragments natively, and restores
    /// interpreter state at the exit.
    fn execute_tree_once(
        &mut self,
        tid: TreeId,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<(u32, u16, ExitKind), RuntimeError> {
        Ok(self
            .execute_tree_from(tid, 0, interp, realm)?
            .expect("trunk entry was checked by the caller"))
    }

    /// Enters tree `tid` at fragment `start` (0 = trunk; >0 =
    /// monitor-mediated branch call). Returns `None` when the fragment's
    /// entry requirements don't match the interpreter state.
    fn execute_tree_from(
        &mut self,
        tid: TreeId,
        start: u32,
        interp: &mut Interp,
        realm: &mut Realm,
    ) -> Result<Option<(u32, u16, ExitKind)>, RuntimeError> {
        let entry_frame_idx = interp.frames.len() - 1;
        let (frags, mut ar) = {
            let tree = self.cache.tree(tid);
            let mut ar = vec![0u64; tree.layout.len()];
            for &(slot, key, ty) in &tree.frag_entry_reqs[start as usize] {
                let Some(v) = read_slot_value(interp, realm, entry_frame_idx, key) else {
                    return Ok(None);
                };
                if !value_matches(realm, v, ty) {
                    return Ok(None);
                }
                ar[slot as usize] = unbox_to_word(realm, v, ty);
            }
            (tree.fragments.clone(), ar)
        };
        self.cache.tree_mut(tid).stats.enters += 1;
        self.profiler.stats.trace_enters += 1;

        self.profiler.switch(Activity::Native);
        // The interpreter's step budget extends to native execution: trace
        // loop edges bail out when the (approximate) fuel runs out.
        let fuel = interp.steps_remaining;
        // Native tier: lazily emit x86-64 code for the whole tree on
        // first execution (or once an invalidation countdown expires);
        // trees with untranslatable ops are marked and fall back to the
        // decoded executor until their shape changes. One map probe on
        // the steady-state paths — this runs on every trace entry.
        enum Plan {
            Use,
            Fallback,
            Emit,
        }
        let plan = if self.opts.native_backend {
            // Settle a finished off-thread emission first so the match
            // below sees the installed state.
            self.poll_native_emission(tid);
            match self.native.get_mut(&tid) {
                Some(NativeState::Ready(_)) => Plan::Use,
                Some(NativeState::Unsupported) => Plan::Fallback,
                Some(NativeState::Emitting { .. }) => Plan::Fallback,
                Some(NativeState::Deferred(n)) => {
                    if *n > 0 {
                        *n -= 1;
                        Plan::Fallback
                    } else {
                        Plan::Emit
                    }
                }
                None => Plan::Emit,
            }
        } else {
            Plan::Fallback
        };
        let use_native = match plan {
            Plan::Use => true,
            Plan::Fallback => false,
            Plan::Emit => {
                if let Some(pool) = self.async_pool() {
                    // Off-thread emission: ship the tree's fragment
                    // snapshot to the pool, keep running decoded, and
                    // install the buffer when the ticket resolves at a
                    // later entry. The request thread never emits.
                    let ticket = pool.submit_emit(EmitJob { fragments: frags.clone() });
                    self.native
                        .insert(tid, NativeState::Emitting { ticket, nfrags: frags.len() });
                    false
                } else {
                    match emit_tree(&frags) {
                        Ok(nt) => {
                            self.profiler.stats.native_fragments += frags.len() as u64;
                            self.profiler.stats.native_emissions_sync += 1;
                            self.native.insert(tid, NativeState::Ready(Arc::new(nt)));
                            true
                        }
                        Err(_) => {
                            self.native.insert(tid, NativeState::Unsupported);
                            false
                        }
                    }
                }
            }
        };
        let trace_exit = if use_native {
            self.profiler.stats.native_exits += 1;
            // Clone the buffer handle out of the map: the nesting host
            // below needs `&mut self` (an inner `CallTree` may itself
            // emit/install native trees), so the run cannot hold a
            // borrow of `self.native`.
            let nt = match self.native.get(&tid) {
                Some(NativeState::Ready(nt)) => Arc::clone(nt),
                _ => unreachable!("use_native checked Ready above"),
            };
            let mut host = NestHost { monitor: self, interp, outer: tid, entry_frame_idx };
            nt.execute(start, &mut ar, realm, &mut host, fuel)?
        } else {
            if self.opts.native_backend {
                self.profiler.stats.native_fallbacks += 1;
            }
            let mut host = NestHost { monitor: self, interp, outer: tid, entry_frame_idx };
            execute(&frags, start, &mut ar, realm, &mut host, fuel)?
        };
        self.profiler.switch(Activity::Monitor);
        interp.steps_remaining = interp.steps_remaining.saturating_sub(trace_exit.insts);
        if interp.steps_remaining == 0 {
            // Restore state first so the error surfaces cleanly.
            interp.steps_remaining = 1;
            let exit_info = &self.cache.tree(tid).exits[trace_exit.fragment as usize]
                [trace_exit.exit as usize];
            if exit_info.kind != ExitKind::NestedUnexpected {
                restore_exit_state(exit_info, &ar, entry_frame_idx, interp, realm);
            }
            return Err(RuntimeError::StepBudgetExhausted);
        }

        // Figure 11 accounting: bytecode-equivalents executed natively.
        {
            let tree = self.cache.tree_mut(tid);
            tree.stats.iterations += trace_exit.iterations;
            tree.stats.monitor_exits += 1;
            let trunk_bc = u64::from(tree.fragment_bytecodes[0]);
            let exit_bc =
                u64::from(tree.fragment_bytecodes[trace_exit.fragment as usize]) / 2;
            self.profiler.stats.bytecodes_native +=
                trace_exit.iterations * trunk_bc + exit_bc;
            self.profiler.stats.native_insts += trace_exit.insts;
            self.profiler.stats.native_insts_fused += trace_exit.fused_insts;
            self.profiler.stats.side_exits += 1;
        }

        // §3.3 short-loop mitigation: a tree whose calls execute too few
        // bytecodes costs more in transitions than it saves; disable it.
        {
            let min_useful = self.opts.min_useful_bytecodes;
            let probation = self.opts.useless_probation;
            let tree = self.cache.tree_mut(tid);
            if tree.stats.enters >= probation {
                let avg = tree.stats.native_bytecodes(tree.fragment_bytecodes[0])
                    / tree.stats.enters.max(1);
                if avg < min_useful {
                    tree.disabled = true;
                }
            }
        }
        self.events.push(TraceEvent::SideExit {
            tree: tid.0,
            fragment: trace_exit.fragment,
            exit: trace_exit.exit,
        });
        let exit_info = &self.cache.tree(tid).exits[trace_exit.fragment as usize]
            [trace_exit.exit as usize];
        let kind = exit_info.kind;
        if kind != ExitKind::NestedUnexpected {
            restore_exit_state(exit_info, &ar, entry_frame_idx, interp, realm);
        }
        if realm.heap.gc_pending {
            let roots = interp.roots();
            realm.collect_garbage(&roots);
        }
        Ok(Some((trace_exit.fragment, trace_exit.exit, kind)))
    }

    /// Resolves a finished off-thread emission for `tid`, if one is in
    /// flight: installs the buffer as [`NativeState::Ready`] (counted in
    /// `native_emissions_offthread`) or marks the tree `Unsupported` on
    /// failure. Leaves the state untouched while the job is still
    /// running. Branch installs invalidate by *replacing* the `Emitting`
    /// state, so a stale buffer can never be installed here; the
    /// fragment-count check is a belt-and-braces guard on that
    /// invariant.
    fn poll_native_emission(&mut self, tid: TreeId) {
        let Some(NativeState::Emitting { ticket, nfrags }) = self.native.get_mut(&tid)
        else {
            return;
        };
        let nfrags = *nfrags;
        let Some(outcome) = ticket.try_ready() else { return };
        let state = match outcome {
            EmitOutcome::Done(nt) if nt.num_fragments() == nfrags => {
                self.profiler.stats.native_fragments += nfrags as u64;
                self.profiler.stats.native_emissions_offthread += 1;
                NativeState::Ready(Arc::from(nt))
            }
            // A buffer for a different fragment set (unreachable by the
            // invalidation invariant): retry after one more decoded run.
            EmitOutcome::Done(_) => NativeState::Deferred(1),
            EmitOutcome::Failed(_) => NativeState::Unsupported,
        };
        self.native.insert(tid, state);
    }

}

/// Restores interpreter state from the activation record according to a
/// side exit's recipe: boxes written slots back, synthesizes inlined
/// frames, and positions the pc (§6.1: "it pops or synthesizes interpreter
/// JavaScript call stack frames as needed [and] copies the imported
/// variables back").
fn restore_exit_state(
    exit: &SideExitInfo,
    ar: &[u64],
    entry_frame_idx: usize,
    interp: &mut Interp,
    realm: &mut Realm,
) {
    // Drop any frames above the entry frame (stale state from an inner
    // tree's deeper exit, superseded by this outer exit).
    interp.frames.truncate(entry_frame_idx + 1);
    let entry_base = interp.frames[entry_frame_idx].base as usize;
    let entry_func = interp.frames[entry_frame_idx].func;
    let entry_nlocals = interp.prog().function(entry_func).nlocals as usize;
    interp.stack.truncate(entry_base + entry_nlocals);

    // Globals and entry-frame locals write back in place.
    for &(slot, key, ty) in &exit.write_back {
        match key {
            SlotKey::Global(g) => {
                let v = box_from_word(realm, ar[slot as usize], ty);
                realm.set_global(g, v);
            }
            SlotKey::Local { depth: 0, slot: l } => {
                let v = box_from_word(realm, ar[slot as usize], ty);
                interp.stack[entry_base + l as usize] = v;
            }
            _ => {}
        }
    }
    // Entry-frame operand stack, in push order.
    push_frame_stack(exit, 0, ar, interp, realm);
    interp.frames[entry_frame_idx].pc = exit.frames[0].resume_pc;

    // Synthesize inlined frames (§3.1 frame reconstruction).
    for (d, fd) in exit.frames.iter().enumerate().skip(1) {
        let d8 = d as u8;
        // The callee function object sits beneath the frame.
        interp.stack.push(Value::from_raw(fd.callee_raw));
        let base = interp.stack.len();
        let nlocals = interp.prog().function(fd.func).nlocals;
        for want in 0..nlocals {
            let mut v = Value::UNDEFINED;
            for &(slot, key, ty) in &exit.write_back {
                if key == (SlotKey::Local { depth: d8, slot: want }) {
                    v = box_from_word(realm, ar[slot as usize], ty);
                    break;
                }
            }
            interp.stack.push(v);
        }
        push_frame_stack(exit, d8, ar, interp, realm);
        interp.frames.push(tm_interp::Frame {
            func: fd.func,
            pc: fd.resume_pc,
            base: base as u32,
            is_construct: fd.is_construct,
        });
    }
}

/// Reads the interpreter-visible value for `key` relative to
/// `entry_frame_idx`, or `None` when the location is not materialized.
fn read_slot_value(
    interp: &Interp,
    realm: &Realm,
    entry_frame_idx: usize,
    key: SlotKey,
) -> Option<Value> {
    match key {
        SlotKey::Global(g) => Some(realm.global(g)),
        SlotKey::Local { depth, slot } => {
            let fidx = entry_frame_idx + depth as usize;
            if fidx >= interp.frames.len() {
                return None;
            }
            Some(interp.local_at(fidx, slot))
        }
        SlotKey::Stack { depth, idx } => {
            let fidx = entry_frame_idx + depth as usize;
            if fidx >= interp.frames.len() {
                return None;
            }
            let frame = interp.frames[fidx];
            let nlocals = interp.prog().function(frame.func).nlocals as usize;
            let pos = frame.base as usize + nlocals + idx as usize;
            // The entry must be within this frame's live operand stack.
            let limit = interp
                .frames
                .get(fidx + 1)
                .map(|next| next.base as usize - 1)
                .unwrap_or(interp.stack.len());
            if pos >= limit {
                return None;
            }
            Some(interp.stack[pos])
        }
        SlotKey::Reimport { .. } => None,
    }
}

/// Pushes frame `depth`'s operand-stack entries in index order.
fn push_frame_stack(
    exit: &SideExitInfo,
    depth: u8,
    ar: &[u64],
    interp: &mut Interp,
    realm: &mut Realm,
) {
    for want in 0..exit.frames[depth as usize].stack_depth {
        let mut found = None;
        for &(slot, key, ty) in &exit.write_back {
            if key == (SlotKey::Stack { depth, idx: want }) {
                found = Some(box_from_word(realm, ar[slot as usize], ty));
                break;
            }
        }
        interp.stack.push(found.expect("exit stack entries are written"));
    }
}

/// Errors internal to the recording driver.
enum RecordError {
    Guest(RuntimeError),
    ProgramFinished(Value),
}

/// The nesting host: executes inner trees on behalf of `CallTree`
/// instructions in outer traces (§4.1).
struct NestHost<'a> {
    monitor: &'a mut Monitor,
    interp: &'a mut Interp,
    outer: TreeId,
    entry_frame_idx: usize,
}

impl TreeHost for NestHost<'_> {
    fn call_tree(
        &mut self,
        site_id: u32,
        ar: &mut [u64],
        realm: &mut Realm,
    ) -> Result<bool, RuntimeError> {
        let (inner, expected_exit) = {
            let tree = self.monitor.cache.tree(self.outer);
            let site = &tree.nested_sites[site_id as usize];
            // 1. Sync outer AR → interpreter state at the call site.
            restore_exit_state(&site.callsite, ar, self.entry_frame_idx, self.interp, realm);
            (site.inner, site.expected_exit)
        };

        // 2. Entry check for the inner tree.
        if !self.monitor.cache.tree(inner).entry_matches(realm, self.interp) {
            return Ok(false);
        }

        // 3. Execute the inner tree (recursing through this host for its
        //    own nested calls).
        let (frag, exit, _kind) =
            self.monitor.execute_tree_once(inner, self.interp, realm)?;
        if (frag, exit) != expected_exit {
            // §4.1 "we must guard on it after the call, and side exit if
            // the property does not hold."
            self.monitor.pending_inner_exit = Some((inner, frag, exit));
            return Ok(false);
        }

        // 4. Refresh the outer AR from interpreter state: everything the
        // outer trace re-reads (`reimports`, in private slots), plus every
        // global/local slot that was synced to the interpreter at the call
        // site or is a loop-persistent write — the inner tree may have
        // modified those interpreter locations, and later outer exits
        // write them back from the AR.
        let tree = self.monitor.cache.tree(self.outer);
        let site = &tree.nested_sites[site_id as usize];
        let inner_top = self.interp.frames.len() - 1;
        // Later entries overwrite earlier ones, so the call-site types
        // (what post-call exits expect for slots written before the call)
        // take precedence over generic entry/loop-edge types; reimports
        // use private slots and never collide. Entry slots must also be
        // refreshed: branch fragments read them, and the inner tree may
        // have changed the underlying location.
        let entry_refresh = tree
            .entry
            .iter()
            .filter(|e| matches!(e.key, SlotKey::Global(_) | SlotKey::Local { .. }))
            .map(|e| (e.ar, e.key, e.ty));
        let refresh = entry_refresh
            .chain(tree.loop_writes.iter().copied())
            .chain(
                site.callsite
                    .write_back
                    .iter()
                    .filter(|&&(_, key, _)| {
                        matches!(key, SlotKey::Global(_) | SlotKey::Local { .. })
                    })
                    .copied(),
            )
            .chain(site.reimports.iter().copied());
        for (slot, key, ty) in refresh {
            let v = match key {
                SlotKey::Global(g) => realm.global(g),
                SlotKey::Local { depth, slot } => {
                    let idx = self.entry_frame_idx + depth as usize;
                    if idx > inner_top {
                        return Ok(false);
                    }
                    self.interp.local_at(idx, slot)
                }
                SlotKey::Stack { depth, idx } => {
                    let fidx = self.entry_frame_idx + depth as usize;
                    if fidx > inner_top {
                        return Ok(false);
                    }
                    let frame = self.interp.frames[fidx];
                    let nlocals =
                        self.interp.prog().function(frame.func).nlocals as usize;
                    let pos = frame.base as usize + nlocals + idx as usize;
                    self.interp.stack[pos]
                }
                SlotKey::Reimport { .. } => {
                    unreachable!("reimport lists store source keys")
                }
            };
            if !value_matches(realm, v, ty) {
                return Ok(false);
            }
            ar[slot as usize] = unbox_to_word(realm, v, ty);
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{Engine, Vm};

    fn traced(src: &str) -> Vm {
        let mut opts = JitOptions::default();
        opts.log_events = true;
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        vm.eval(src).expect("runs");
        vm
    }

    #[test]
    fn hot_loop_compiles_exactly_one_trunk() {
        let vm = traced("var s = 0; for (var i = 0; i < 100; i++) s += i; s");
        let m = vm.monitor().unwrap();
        assert_eq!(m.cache.len(), 1);
        let t = m.cache.iter().next().unwrap();
        assert_eq!(t.fragments.len(), 1);
        assert!(!t.unstable);
        assert!(t.stats.iterations > 90, "iterations: {}", t.stats.iterations);
        // One loop-edge exit plus assorted guards, all Return targets.
        assert!(t.fragments[0].exit_targets.iter().all(|e| matches!(e, ExitTarget::Return)));
    }

    #[test]
    fn cold_loops_are_not_compiled() {
        // Only one crossing: below the hotness threshold of 2.
        let vm = traced("var s = 0; for (var i = 0; i < 0; i++) s += i; s");
        assert_eq!(vm.monitor().unwrap().cache.len(), 0);
    }

    #[test]
    fn hotness_threshold_is_respected() {
        let mut opts = JitOptions::default();
        opts.hotness_threshold = 1000;
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        vm.eval("var s = 0; for (var i = 0; i < 100; i++) s += i; s").unwrap();
        assert_eq!(vm.monitor().unwrap().cache.len(), 0, "loop never reaches 1000 crossings");
    }

    #[test]
    fn sibling_trees_for_type_permutations() {
        // The loop alternates int/double phases over evals sharing one
        // monitor is not possible; instead a type flip mid-loop creates
        // sibling trees in one run.
        let vm = traced(
            "var v = 0; var s = 0;
             for (var i = 0; i < 2000; i++) { if (i == 1000) v = 0.5; s += v + 1; }
             s",
        );
        let m = vm.monitor().unwrap();
        assert!(m.cache.len() >= 2, "int-phase and double-phase trees");
    }

    #[test]
    fn exit_counters_gate_branch_recording() {
        let mut opts = JitOptions::default();
        opts.hot_exit_threshold = u32::MAX; // branches never become hot
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        vm.eval("var a = 0; for (var i = 0; i < 500; i++) { if (i % 2) a++; else a--; } a")
            .unwrap();
        let m = vm.monitor().unwrap();
        for t in m.cache.iter() {
            assert_eq!(t.fragments.len(), 1, "no branch fragments without hot exits");
        }
    }

    #[test]
    fn read_slot_value_covers_frames_and_stack() {
        let mut realm = Realm::new();
        let ast = tm_frontend::parse("var g = 7; var x = 0;").unwrap();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        let _ = interp.run(&mut realm).unwrap();
        interp.reset();
        let g = realm.lookup_global("g").unwrap();
        let v = read_slot_value(&interp, &realm, 0, SlotKey::Global(g));
        assert!(v.is_some());
        // Locals of the entry frame are readable; deeper frames are not.
        assert!(read_slot_value(&interp, &realm, 0, SlotKey::Local { depth: 0, slot: 0 })
            .is_some());
        assert!(read_slot_value(&interp, &realm, 0, SlotKey::Local { depth: 3, slot: 0 })
            .is_none());
        assert!(read_slot_value(&interp, &realm, 0, SlotKey::Reimport { site: 0, idx: 0 })
            .is_none());
    }
}
