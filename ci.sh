#!/usr/bin/env bash
# Hermetic CI for tracemonkey-rs: offline, locked, zero registry
# dependencies. Must pass on a machine with no network and no cargo
# registry cache.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> policy: no registry (non-path) dependencies in any Cargo.toml"
manifests=(Cargo.toml crates/*/Cargo.toml)
# A registry dependency declares a version requirement: either an inline
# table with `version =` or a bare `name = "<semver>"`. Workspace/package
# metadata keys (version/edition/rust-version/resolver) are the only
# allowed version-like lines.
if grep -nE '=[[:space:]]*\{[^}]*version[[:space:]]*=|^[a-z0-9_-]+[[:space:]]*=[[:space:]]*"[0-9^~]' "${manifests[@]}" \
    | grep -vE 'Cargo\.toml:[0-9]+:(version|edition|rust-version|resolver)[[:space:]]*='; then
    echo "error: registry dependency declarations found above; all dependencies must be path deps" >&2
    exit 1
fi
echo "    OK: ${#manifests[@]} manifests are path-only"

echo "==> tier-1: hermetic release build"
# --workspace so the tm-bench perf binaries are rebuilt too: the perf
# stages below must never gate against a stale bench_pr4/bench_pr5.
cargo build --release --workspace --offline --locked

echo "==> tier-1: tests (root package: integration, fuzz, property suites)"
# Debug profile: JitOptions.verify defaults on, so every recorded trace in
# this pass goes through the tm-verifier static checks before compilation.
cargo test -q --offline --locked

echo "==> fuzz smoke: fixed seed replay, verifier enabled (debug profile)"
# Deterministic: a pinned seed list (including past regression seeds) run
# through the differential harness on every engine. Seed 30 is the
# recursive-branch resume-pc regression; keep it in the list.
TM_FUZZ_SEEDS="0,7,30,42,99,123,200,256" \
    cargo test -q --offline --locked --test fuzz_differential fuzz_replay_seeds

echo "==> multi-realm fuzz smoke: fixed seeds, 4 realms sharing one code cache"
# Differential: every realm's every repetition must print exactly what
# the single-threaded interpreter prints. Seed 6 is the step-budget
# regression (a budget-exhausting program must exhaust it in every
# realm, not run unbounded). RUST_TEST_THREADS stays unpinned — the
# suite must pass under any test-runner interleaving.
TM_FUZZ_THREADS=4 TM_FUZZ_SEEDS="0,6" \
    cargo test -q --offline --locked --test fuzz_differential fuzz_multi_realm

echo "==> native-tier fuzz smoke: native x86-64 vs decoded vs interpreter"
# Three-way differential over fixed seeds with the native backend forced
# on: every program must print identically under the native tier, the
# decoded executor, and the interpreter, and the tier accounting must
# balance (native_exits + native_fallbacks == trace_enters). Seeds 9/10/
# 33/57/71 are object/string-heavy generator outputs that exercise the
# full-coverage emitter families (shape guards, slot/element traffic,
# string helpers). TM_FUZZ_BG=1 attaches a compiler pool and runs the
# native pass with background_compile on, so off-thread native emission
# is part of the differential. The test self-skips on targets without
# the backend; the guard here keeps the stage's OK/SKIP line honest.
if [ "$(uname -sm)" = "Linux x86_64" ]; then
    TM_FUZZ_NATIVE=1 TM_FUZZ_BG=1 \
        TM_FUZZ_SEEDS="0,7,9,10,30,33,42,57,71,99,123,200,256" \
        cargo test -q --offline --locked --test fuzz_differential fuzz_native_tier
    echo "    OK: native tier differentially identical on the seed list (off-thread emission on)"
else
    echo "    SKIP: native backend needs Linux x86_64"
fi

echo "==> workspace member tests (per-crate units, tm-support, tm-bench)"
cargo test -q --workspace --exclude tracemonkey --offline --locked

echo "==> bench smoke: one program per SunSpider group (release, 3 repeats)"
# Gate, not a benchmark: asserts the tracing engine beats the pure
# interpreter on the traceable bitops representative and records the
# medians for trend inspection. Full-suite methodology: EXPERIMENTS.md.
./target/release/bench_pr4 --smoke > target/BENCH_pr4_smoke.json
echo "    OK: wrote target/BENCH_pr4_smoke.json"

echo "==> perf smoke: superinstruction fusion (release, 3 fast programs)"
# Two deterministic gates on dispatched-instruction counts (wall-clock is
# reported but never gated): the fused count of each smoke program must
# not exceed the checked-in BENCH_pr5.json baseline by more than 5%, and
# the aggregate raw->fused reduction must stay at or above 25% (the
# superinstruction pass's headline claim).
./target/release/bench_pr5 --smoke --baseline BENCH_pr5.json \
    > target/BENCH_pr5_smoke.json
echo "    OK: wrote target/BENCH_pr5_smoke.json"

echo "==> coverage smoke: recursion + string/date builtins (release)"
# Coverage gate for the recursion/builtin tracing work: every smoke
# program (access-binary-trees, both date-format programs,
# controlflow-recursive) must report nonzero fused dispatched
# instructions — these are exactly the programs that used to dispatch
# zero traced instructions. The checked-in BENCH_pr6.json additionally
# pins that no program regresses from traced back to zero.
./target/release/bench_pr6 --smoke --baseline BENCH_pr6.json \
    > target/BENCH_pr6_smoke.json
echo "    OK: wrote target/BENCH_pr6_smoke.json"

echo "==> warm-start smoke: persistent trace cache across processes (release)"
# Two fresh processes per program share one cache file (docs/PERSISTENCE.md).
# The cold phase records, persists, and re-runs until the cache is
# converged (no new recordings); the warm phase is a separate process that
# must load every tree, record *nothing*, and beat the cold ramp on
# non-native bytecodes. BENCH_pr7.json pins the converged warm-start
# footprint per program; wall-clock is reported but never gated.
rm -rf target/tmcache
./target/release/bench_warmup --smoke --phase cold --cache-dir target/tmcache \
    > target/BENCH_pr7_cold_smoke.json
./target/release/bench_warmup --smoke --phase warm --cache-dir target/tmcache \
    --baseline BENCH_pr7.json > target/BENCH_pr7_smoke.json
echo "    OK: wrote target/BENCH_pr7_smoke.json"

echo "==> multi-tenant smoke: N realms over one shared code cache (release)"
# bench_mt gates: request results identical to single-threaded, nonzero
# cross-realm code sharing, and a core-adaptive throughput floor (4x at
# 8+ cores, C/2 at C cores, no-regression on one core). The checked-in
# BENCH_pr8.json pins the structural counters (a workload that shared
# code or compiled in the background must keep doing so); its timing
# fields are never compared.
./target/release/bench_mt --smoke --baseline BENCH_pr8.json \
    > target/BENCH_pr8_smoke.json
echo "    OK: wrote target/BENCH_pr8_smoke.json"

echo "==> native-tier smoke: real x86-64 code vs the decoded executor (release)"
# bench_native gates: per-program display and deterministic-counter
# identity between the tiers, the per-program accounting invariant
# native_exits + native_fallbacks == trace_enters, majority-native
# uptake on the access and string groups (the full-coverage emitter's
# object/string families), wall-clock wins for the native tier on the
# bitops and access group aggregates, and against the checked-in
# BENCH_pr10.json: no program that ran natively may regress to fallback,
# fallback-free programs stay fallback-free, and dispatched-instruction
# counts stay within 5%. Per-program wall-clock is reported, not gated.
# On targets without the backend the binary prints a skipped marker and
# exits 0; the guard keeps the OK/SKIP line honest.
if [ "$(uname -sm)" = "Linux x86_64" ]; then
    ./target/release/bench_native --smoke --baseline BENCH_pr10.json \
        > target/BENCH_pr10_smoke.json
    echo "    OK: wrote target/BENCH_pr10_smoke.json"
else
    echo "    SKIP: native backend needs Linux x86_64"
fi

echo "==> ThreadSanitizer: concurrency suite (nightly + rust-src only)"
# TSan needs a sanitizer-instrumented std (-Zbuild-std, which needs the
# rust-src component): with the prebuilt std every futex-based Mutex
# handoff is invisible to TSan and reports as a false-positive race.
# Skipped, not failed, when the toolchain can't do it.
if [ "$(uname -sm)" = "Linux x86_64" ] \
    && rustup toolchain list 2>/dev/null | grep -q '^nightly' \
    && rustup component list --toolchain nightly --installed 2>/dev/null \
        | grep -q '^rust-src'; then
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -q --offline --locked -Zbuild-std \
        --target x86_64-unknown-linux-gnu --test concurrency
    echo "    OK: concurrency suite is race-clean under ThreadSanitizer"
else
    echo "    SKIP: needs Linux x86_64 + nightly toolchain + rust-src"
fi

echo "==> ci.sh: all green"
