#!/usr/bin/env bash
# Hermetic CI for tracemonkey-rs: offline, locked, zero registry
# dependencies. Must pass on a machine with no network and no cargo
# registry cache.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> policy: no registry (non-path) dependencies in any Cargo.toml"
manifests=(Cargo.toml crates/*/Cargo.toml)
# A registry dependency declares a version requirement: either an inline
# table with `version =` or a bare `name = "<semver>"`. Workspace/package
# metadata keys (version/edition/rust-version/resolver) are the only
# allowed version-like lines.
if grep -nE '=[[:space:]]*\{[^}]*version[[:space:]]*=|^[a-z0-9_-]+[[:space:]]*=[[:space:]]*"[0-9^~]' "${manifests[@]}" \
    | grep -vE 'Cargo\.toml:[0-9]+:(version|edition|rust-version|resolver)[[:space:]]*='; then
    echo "error: registry dependency declarations found above; all dependencies must be path deps" >&2
    exit 1
fi
echo "    OK: ${#manifests[@]} manifests are path-only"

echo "==> tier-1: hermetic release build"
cargo build --release --offline --locked

echo "==> tier-1: tests (root package: integration, fuzz, property suites)"
cargo test -q --offline --locked

echo "==> workspace member tests (per-crate units, tm-support, tm-bench)"
cargo test -q --workspace --exclude tracemonkey --offline --locked

echo "==> ci.sh: all green"
