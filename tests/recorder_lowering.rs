//! White-box tests of the trace recorder's type specialization: the
//! compiled trunk of specific source patterns must contain the expected
//! specialized machine operations (and not generic ones) — the core claim
//! of §3.1's "Type specialization" and "Representation specialization".

use tracemonkey::nanojit::MachInst;
use tracemonkey::runtime::Helper;
use tracemonkey::{Engine, Vm};

/// Runs `src` under tracing and returns the trunk instructions of the
/// first compiled tree.
fn trunk_of(src: &str) -> Vec<MachInst> {
    let mut vm = Vm::new(Engine::Tracing);
    vm.eval(src).expect("program runs");
    let m = vm.monitor().expect("tracing");
    let tree = m.cache.iter().next().expect("a tree compiled");
    tree.fragments[0].code.clone()
}

fn has(code: &[MachInst], pred: impl Fn(&MachInst) -> bool) -> bool {
    code.iter().any(pred)
}

#[test]
fn int_loops_use_checked_int_arithmetic() {
    let code = trunk_of("var s = 0; for (var i = 0; i < 500; i++) s += i; s");
    assert!(has(&code, |i| matches!(i, MachInst::AddIChk { .. })),
        "int accumulation compiles to overflow-guarded int add");
    assert!(!has(&code, |i| matches!(i, MachInst::AddD { .. })),
        "no double arithmetic in a pure int loop");
    assert!(!has(&code, |i| matches!(i, MachInst::CallHelper { .. })),
        "no helper calls in a pure int loop");
}

#[test]
fn double_loops_use_double_arithmetic_without_guards() {
    let code = trunk_of("var s = 0.5; for (var i = 0; i < 500; i++) s = s + 1.5; s");
    assert!(has(&code, |i| matches!(i, MachInst::AddD { .. })),
        "double accumulation compiles to unguarded double add");
}

#[test]
fn comparisons_specialize_by_type() {
    let int_code = trunk_of("var n = 0; for (var i = 0; i < 500; i++) if (i < 250) n++; n");
    assert!(has(&int_code, |i| matches!(i, MachInst::LtI { .. })));
    let dbl_code =
        trunk_of("var n = 0; var x = 0.0; for (var i = 0; i < 500; i++) { x += 0.5; if (x < 100.5) n++; } n");
    assert!(has(&dbl_code, |i| matches!(i, MachInst::LtD { .. })));
}

#[test]
fn property_reads_are_shape_guarded_slot_loads() {
    let code = trunk_of(
        "var o = {a: 1, b: 2}; var s = 0; for (var i = 0; i < 500; i++) s += o.b; s",
    );
    assert!(has(&code, |i| matches!(i, MachInst::GuardShape { .. })),
        "property access guards the object shape");
    assert!(has(&code, |i| matches!(i, MachInst::LoadSlot { slot: 1, .. })),
        "o.b reads slot 1 directly (the paper's 'one more load to get slot 2')");
}

#[test]
fn array_reads_are_class_and_bounds_guarded() {
    let code = trunk_of(
        "var a = [1,2,3,4]; var s = 0; for (var i = 0; i < 500; i++) s += a[i & 3]; s",
    );
    assert!(has(&code, |i| matches!(i, MachInst::GuardClass { class: 1, .. })),
        "Figure 3's class guard: the base must be an array");
    assert!(has(&code, |i| matches!(i, MachInst::GuardBound { .. })));
    assert!(has(&code, |i| matches!(i, MachInst::LoadElem { .. })));
}

#[test]
fn array_append_calls_js_array_set() {
    let code = trunk_of("var a = []; for (var i = 0; i < 500; i++) a[i] = i; a.length");
    assert!(
        has(&code, |i| matches!(
            i,
            MachInst::CallHelper { helper: Helper::ArraySetElem, .. }
        )),
        "out-of-bounds stores call the array-set helper (Figure 3's js_Array_set)"
    );
}

#[test]
fn math_sin_uses_the_typed_fast_call() {
    let code =
        trunk_of("var s = 0; for (var i = 0; i < 500; i++) s += Math.sin(i * 0.1); Math.floor(s)");
    assert!(
        has(&code, |i| matches!(i, MachInst::CallHelper { helper: Helper::Sin, .. })),
        "Math.sin with a double argument uses the specialized helper (§6.5)"
    );
    assert!(
        !has(&code, |i| matches!(
            i,
            MachInst::CallHelper { helper: Helper::CallNative(_), .. }
        )),
        "no generic boxed-argument native call for the specialized path"
    );
}

#[test]
fn function_calls_are_inlined_with_identity_guards() {
    let code = trunk_of(
        "function f(a) { return a * 2; } var s = 0; for (var i = 0; i < 500; i++) s += f(i); s",
    );
    assert!(has(&code, |i| matches!(i, MachInst::GuardBoxedEq { .. })),
        "the callee identity is guarded (§3.1 'guard that the function is the same')");
    assert!(has(&code, |i| matches!(i, MachInst::MulIChk { .. })),
        "the callee body is inlined into the trace");
}

#[test]
fn loop_back_is_the_last_instruction_of_a_stable_trunk() {
    let code = trunk_of("var s = 0; for (var i = 0; i < 500; i++) s += i; s");
    assert!(matches!(code.last(), Some(MachInst::LoopBack { .. })),
        "a type-stable loop trace ends by jumping to its anchor");
}

#[test]
fn bitops_compile_to_plain_int_ops() {
    let code = trunk_of(
        "var v = 0; for (var i = 0; i < 500; i++) v = (v ^ i) & 0xffff; v",
    );
    assert!(has(&code, |i| matches!(i, MachInst::XorI { .. })));
    assert!(has(&code, |i| matches!(i, MachInst::AndI { .. })));
}

#[test]
fn string_char_code_uses_sentinel_helper() {
    let code = trunk_of(
        "var t = 'abcdef'; var s = 0; for (var i = 0; i < 600; i++) s += t.charCodeAt(i % 6); s",
    );
    assert!(has(&code, |i| matches!(
        i,
        MachInst::CallHelper { helper: Helper::CharCodeAt, .. }
    )));
}

#[test]
fn typeof_needs_no_runtime_dispatch() {
    // typeof on a type-known value folds to a constant string handle.
    let code = trunk_of(
        "var n = 0; for (var i = 0; i < 500; i++) if (typeof i === 'number') n++; n",
    );
    assert!(
        !has(&code, |i| matches!(
            i,
            MachInst::CallHelper { helper: Helper::TypeofAny, .. }
        )),
        "typeof of a typed value is resolved at record time"
    );
}
