//! White-box tests of the trace recorder's type specialization: the
//! compiled trunk of specific source patterns must contain the expected
//! specialized machine operations (and not generic ones) — the core claim
//! of §3.1's "Type specialization" and "Representation specialization".

use tracemonkey::nanojit::MachInst;
use tracemonkey::runtime::Helper;
use tracemonkey::{Engine, Vm};
use tm_lir::{AluOp, ChkOp, CmpOp};

/// Runs `src` under tracing and returns the trunk instructions of the
/// first compiled tree.
fn trunk_of(src: &str) -> Vec<MachInst> {
    let mut vm = Vm::new(Engine::Tracing);
    vm.eval(src).expect("program runs");
    let m = vm.monitor().expect("tracing");
    let tree = m.cache.iter().next().expect("a tree compiled");
    tree.fragments[0].code.clone()
}

fn has(code: &[MachInst], pred: impl Fn(&MachInst) -> bool) -> bool {
    code.iter().any(pred)
}

/// Overflow-checked int arithmetic of class `op`, raw or fused — the
/// peephole pass may fold the operand/`WriteAr` but keeps the check.
fn has_checked(code: &[MachInst], op: ChkOp) -> bool {
    has(code, |i| match *i {
        MachInst::AddIChk { .. } => op == ChkOp::Add,
        MachInst::SubIChk { .. } => op == ChkOp::Sub,
        MachInst::MulIChk { .. } => op == ChkOp::Mul,
        MachInst::ShlIChk { .. } => op == ChkOp::Shl,
        MachInst::UShrIChk { .. } => op == ChkOp::UShr,
        MachInst::ChkAluImmI { op: o, .. }
        | MachInst::ChkAluWrI { op: o, .. }
        | MachInst::ChkAluImmWrI { op: o, .. }
        | MachInst::ChkAluImmWrLoopI { op: o, .. } => o == op,
        _ => false,
    })
}

/// Int comparison of class `op`, raw or in any fused compare-carrying
/// form.
fn has_cmp_i(code: &[MachInst], op: CmpOp) -> bool {
    has(code, |i| match *i {
        MachInst::EqI { .. } => op == CmpOp::Eq,
        MachInst::LtI { .. } => op == CmpOp::Lt,
        MachInst::LeI { .. } => op == CmpOp::Le,
        MachInst::GtI { .. } => op == CmpOp::Gt,
        MachInst::GeI { .. } => op == CmpOp::Ge,
        MachInst::CmpImmI { op: o, .. }
        | MachInst::CmpWrI { op: o, .. }
        | MachInst::CmpImmWrI { op: o, .. }
        | MachInst::CmpBranchI { op: o, .. }
        | MachInst::CmpBranchImmI { op: o, .. }
        | MachInst::CmpWrBranchI { op: o, .. }
        | MachInst::CmpImmWrBranchI { op: o, .. }
        | MachInst::CmpBranchLoopI { op: o, .. } => o == op,
        _ => false,
    })
}

/// Double comparison of class `op`, raw or fused.
fn has_cmp_d(code: &[MachInst], op: CmpOp) -> bool {
    has(code, |i| match *i {
        MachInst::EqD { .. } => op == CmpOp::Eq,
        MachInst::LtD { .. } => op == CmpOp::Lt,
        MachInst::LeD { .. } => op == CmpOp::Le,
        MachInst::GtD { .. } => op == CmpOp::Gt,
        MachInst::GeD { .. } => op == CmpOp::Ge,
        MachInst::CmpWrD { op: o, .. }
        | MachInst::CmpBranchD { op: o, .. }
        | MachInst::CmpWrBranchD { op: o, .. }
        | MachInst::CmpBranchLoopD { op: o, .. } => o == op,
        _ => false,
    })
}

/// Plain int ALU of class `op`, raw or fused.
fn has_alu(code: &[MachInst], op: AluOp) -> bool {
    has(code, |i| match *i {
        MachInst::XorI { .. } => op == AluOp::Xor,
        MachInst::AndI { .. } => op == AluOp::And,
        MachInst::AluImmI { op: o, .. }
        | MachInst::AluArI { op: o, .. }
        | MachInst::AluWrI { op: o, .. }
        | MachInst::AluImmWrI { op: o, .. } => o == op,
        _ => false,
    })
}

#[test]
fn int_loops_use_checked_int_arithmetic() {
    let code = trunk_of("var s = 0; for (var i = 0; i < 500; i++) s += i; s");
    assert!(has_checked(&code, ChkOp::Add),
        "int accumulation compiles to overflow-guarded int add");
    assert!(!has(&code, |i| matches!(i, MachInst::AddD { .. })),
        "no double arithmetic in a pure int loop");
    assert!(!has(&code, |i| matches!(i, MachInst::CallHelper { .. })),
        "no helper calls in a pure int loop");
}

#[test]
fn double_loops_use_double_arithmetic_without_guards() {
    let code = trunk_of("var s = 0.5; for (var i = 0; i < 500; i++) s = s + 1.5; s");
    assert!(has(&code, |i| matches!(i, MachInst::AddD { .. })),
        "double accumulation compiles to unguarded double add");
}

#[test]
fn comparisons_specialize_by_type() {
    let int_code = trunk_of("var n = 0; for (var i = 0; i < 500; i++) if (i < 250) n++; n");
    assert!(has_cmp_i(&int_code, CmpOp::Lt));
    let dbl_code =
        trunk_of("var n = 0; var x = 0.0; for (var i = 0; i < 500; i++) { x += 0.5; if (x < 100.5) n++; } n");
    assert!(has_cmp_d(&dbl_code, CmpOp::Lt));
}

#[test]
fn property_reads_are_shape_guarded_slot_loads() {
    let code = trunk_of(
        "var o = {a: 1, b: 2}; var s = 0; for (var i = 0; i < 500; i++) s += o.b; s",
    );
    assert!(has(&code, |i| matches!(i, MachInst::GuardShape { .. })),
        "property access guards the object shape");
    assert!(has(&code, |i| matches!(i, MachInst::LoadSlot { slot: 1, .. })),
        "o.b reads slot 1 directly (the paper's 'one more load to get slot 2')");
}

#[test]
fn array_reads_are_class_and_bounds_guarded() {
    let code = trunk_of(
        "var a = [1,2,3,4]; var s = 0; for (var i = 0; i < 500; i++) s += a[i & 3]; s",
    );
    assert!(has(&code, |i| matches!(i, MachInst::GuardClass { class: 1, .. })),
        "Figure 3's class guard: the base must be an array");
    assert!(has(&code, |i| matches!(i, MachInst::GuardBound { .. })));
    assert!(has(&code, |i| matches!(i, MachInst::LoadElem { .. })));
}

#[test]
fn array_append_calls_js_array_set() {
    let code = trunk_of("var a = []; for (var i = 0; i < 500; i++) a[i] = i; a.length");
    assert!(
        has(&code, |i| matches!(
            i,
            MachInst::CallHelper { helper: Helper::ArraySetElem, .. }
        )),
        "out-of-bounds stores call the array-set helper (Figure 3's js_Array_set)"
    );
}

#[test]
fn math_sin_uses_the_typed_fast_call() {
    let code =
        trunk_of("var s = 0; for (var i = 0; i < 500; i++) s += Math.sin(i * 0.1); Math.floor(s)");
    assert!(
        has(&code, |i| matches!(i, MachInst::CallHelper { helper: Helper::Sin, .. })),
        "Math.sin with a double argument uses the specialized helper (§6.5)"
    );
    assert!(
        !has(&code, |i| matches!(
            i,
            MachInst::CallHelper { helper: Helper::CallNative(_), .. }
        )),
        "no generic boxed-argument native call for the specialized path"
    );
}

#[test]
fn function_calls_are_inlined_with_identity_guards() {
    let code = trunk_of(
        "function f(a) { return a * 2; } var s = 0; for (var i = 0; i < 500; i++) s += f(i); s",
    );
    assert!(has(&code, |i| matches!(i, MachInst::GuardBoxedEq { .. })),
        "the callee identity is guarded (§3.1 'guard that the function is the same')");
    assert!(has_checked(&code, ChkOp::Mul),
        "the callee body is inlined into the trace");
}

#[test]
fn loop_back_is_the_last_instruction_of_a_stable_trunk() {
    let code = trunk_of("var s = 0; for (var i = 0; i < 500; i++) s += i; s");
    assert!(
        matches!(
            code.last(),
            Some(
                MachInst::LoopBack { .. }
                    | MachInst::CmpBranchLoopI { .. }
                    | MachInst::CmpBranchLoopD { .. }
                    | MachInst::ChkAluImmWrLoopI { .. }
            )
        ),
        "a type-stable loop trace ends by jumping to its anchor"
    );
}

#[test]
fn bitops_compile_to_plain_int_ops() {
    let code = trunk_of(
        "var v = 0; for (var i = 0; i < 500; i++) v = (v ^ i) & 0xffff; v",
    );
    assert!(has_alu(&code, AluOp::Xor));
    assert!(has_alu(&code, AluOp::And));
}

#[test]
fn string_char_code_uses_sentinel_helper() {
    let code = trunk_of(
        "var t = 'abcdef'; var s = 0; for (var i = 0; i < 600; i++) s += t.charCodeAt(i % 6); s",
    );
    assert!(has(&code, |i| matches!(
        i,
        MachInst::CallHelper { helper: Helper::CharCodeAt, .. }
    )));
}

#[test]
fn typeof_needs_no_runtime_dispatch() {
    // typeof on a type-known value folds to a constant string handle.
    let code = trunk_of(
        "var n = 0; for (var i = 0; i < 500; i++) if (typeof i === 'number') n++; n",
    );
    assert!(
        !has(&code, |i| matches!(
            i,
            MachInst::CallHelper { helper: Helper::TypeofAny, .. }
        )),
        "typeof of a typed value is resolved at record time"
    );
}
