//! Multi-tenant concurrency tests: N realms on independent threads must
//! behave exactly like N sequential single-realm runs — byte-identical
//! results and `print` output, consistent traced coverage — whether the
//! shared code cache and background compiler pool are on or off.
//!
//! The deterministic interleaving tests drive two realm threads through
//! the `tm_support::sched` rig: a seeded cooperative scheduler permutes
//! the order the threads pass the instrumented yield points in the
//! compiler-pool handoff (`pool.submit`/`pool.wait`) and the shared-cache
//! insert/evict paths (`shared.lookup`/`shared.publish`/`shared.evict`),
//! so every tested interleaving is replayable from its seed.

use std::sync::Mutex;

use tracemonkey::jit::vm::{Engine as CoreEngine, Vm as CoreVm};
use tracemonkey::{JitOptions, MultiTenantVm, RealmJob};
use tm_support::sched::Schedule;

/// The sched rig is process-global; every test that arms it serializes here.
static RIG: Mutex<()> = Mutex::new(());

/// Hot loop with a type-stable body plus a branchy side (side exits →
/// branch fragments → more compiler-pool traffic).
const HOT_BRANCHY: &str = "\
    var s = 0;\n\
    for (var i = 0; i < 400; i++) {\n\
        if (i % 3 == 0) { s += i * 2; } else { s -= i; }\n\
    }\n\
    s";

/// A mixed bag of programs: objects, strings, nested loops, recursion.
const MIXED: [&str; 4] = [
    HOT_BRANCHY,
    "var o = { a: 0, b: 1 };\n\
     for (var i = 0; i < 300; i++) { o.a = (o.a + o.b) | 0; o.b = (o.b + i) | 0; }\n\
     o.a + o.b",
    "var s = \"x\";\n\
     var n = 0;\n\
     for (var i = 0; i < 200; i++) { if (s.length < 40) { s = s + \"y\"; } n += s.length; }\n\
     n",
    "function rec(n, a) { if (n < 1) { return a; } return rec(n - 1, (a + n) | 0); }\n\
     var acc = 0;\n\
     for (var i = 0; i < 120; i++) { acc = (acc + rec(i & 7, i)) | 0; }\n\
     acc",
];

/// Runs `sources` once each on a fresh, fully isolated tracing VM (no
/// shared cache, no pool) and returns the displayed results plus the
/// final profile counters per source.
fn isolated_run(sources: &[&str], opts: JitOptions) -> Vec<(Result<String, String>, u64, u64)> {
    sources
        .iter()
        .map(|src| {
            let mut vm = CoreVm::with_options(CoreEngine::Tracing, opts);
            vm.set_cache_path(None);
            let r = match vm.eval(src) {
                Ok(v) => Ok(tracemonkey::runtime::ops::to_display(&mut vm.realm, v)),
                Err(e) => Err(e.to_string()),
            };
            let stats = vm.profile().cloned().unwrap_or_default();
            (r, stats.trees, stats.traces_completed)
        })
        .collect()
}

/// Tentpole differential: the same program on 4 concurrent isolated
/// realms (no sharing at all) is byte-identical to the single-threaded
/// run, with identical traced coverage per realm — concurrency alone
/// must not perturb monitor decisions.
#[test]
fn concurrent_isolated_realms_match_single_threaded() {
    let opts = JitOptions::default();
    let baseline = isolated_run(&[HOT_BRANCHY], opts);
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || isolated_run(&[HOT_BRANCHY], opts)))
        .collect();
    for h in handles {
        let got = h.join().expect("realm thread panicked");
        assert_eq!(got, baseline, "a concurrent realm diverged from single-threaded");
    }
    assert!(baseline[0].1 >= 1, "the hot loop must have compiled a tree");
}

/// Same differential with the shared cache and background pool on:
/// results and output stay byte-identical, every realm ends up with
/// traced coverage (own compile or shared install), and the shared-cache
/// hit counters prove cross-realm reuse actually happened.
#[test]
fn concurrent_shared_realms_match_and_reuse_code() {
    let expected = isolated_run(&[HOT_BRANCHY], JitOptions::default())
        .into_iter()
        .map(|(r, _, _)| r)
        .collect::<Vec<_>>();
    let mt = MultiTenantVm::new(2);
    let reports = mt.run(vec![RealmJob::repeat(HOT_BRANCHY, 3); 4]);
    for (i, rep) in reports.iter().enumerate() {
        for r in &rep.results {
            assert_eq!(*r, expected[0], "realm {i} diverged");
        }
        assert!(rep.output.is_empty(), "program prints nothing");
        let covered = rep.stats.iter().any(|s| {
            s.trees > 0 || s.shared_cache_installed_trees > 0 || s.cache_loaded_trees > 0
        });
        assert!(covered, "realm {i} never got a compiled tree");
    }
    let s = mt.shared_stats();
    assert!(s.publishes >= 1, "someone published: {s:?}");
    assert!(s.hits >= 1, "4 realms x 3 evals of one program must share: {s:?}");
    let installed: u64 = reports
        .iter()
        .flat_map(|r| &r.stats)
        .map(|s| s.shared_cache_installed_trees)
        .sum();
    assert!(installed >= 1, "at least one realm installed a shared tree");
}

/// Stress: different programs per realm, interleaved request mixes, both
/// sharing layers on. Every realm must agree with its own isolated
/// baseline (no cross-tenant bleed of results or code).
#[test]
fn mixed_program_stress() {
    let baselines: Vec<Result<String, String>> = MIXED
        .iter()
        .map(|src| isolated_run(&[src], JitOptions::default()).remove(0).0)
        .collect();
    let mt = MultiTenantVm::new(2);
    // Realm k runs the mixed programs rotated by k, twice around.
    let jobs: Vec<RealmJob> = (0..MIXED.len())
        .map(|k| RealmJob {
            sources: (0..MIXED.len() * 2)
                .map(|j| MIXED[(k + j) % MIXED.len()].to_owned())
                .collect(),
            cache_path: None,
            step_budget: u64::MAX,
        })
        .collect();
    let reports = mt.run(jobs);
    for (k, rep) in reports.iter().enumerate() {
        for (j, r) in rep.results.iter().enumerate() {
            let want = &baselines[(k + j) % MIXED.len()];
            assert_eq!(r, want, "realm {k} request {j} diverged");
        }
    }
}

/// One seeded two-thread schedule: both realms run the same job under
/// the rig; returns their displayed results and the observed trace.
///
/// With `background` the compiler pool is live, so the worker thread runs
/// unscheduled: the rig still seeds the *realm threads'* interleaving
/// (results must never depend on the worker's timing), but the recorded
/// trace is only schedule-pure in the synchronous configuration.
fn scheduled_pair(
    seed: u64,
    background: bool,
) -> (Vec<Result<String, String>>, Vec<Result<String, String>>, Vec<(usize, &'static str)>) {
    let sched = Schedule::new(seed, 2);
    let mut opts = JitOptions::default();
    opts.background_compile = background;
    let mt = MultiTenantVm::with_options(opts, 1);
    let (r0, r1) = std::thread::scope(|s| {
        let mt_ref = &mt;
        let h0 = {
            let sch = sched.clone();
            s.spawn(move || {
                let _p = sch.attach(0);
                mt_ref.run_job(&RealmJob::repeat(HOT_BRANCHY, 2))
            })
        };
        let h1 = {
            let sch = sched.clone();
            s.spawn(move || {
                let _p = sch.attach(1);
                mt_ref.run_job(&RealmJob::repeat(HOT_BRANCHY, 2))
            })
        };
        sched.start();
        (h0.join().expect("realm 0 panicked"), h1.join().expect("realm 1 panicked"))
    });
    let trace = sched.finish();
    (r0.results, r1.results, trace)
}

/// The concurrency test rig end to end: >= 64 seed-permuted schedules of
/// the two-realm compiler-pool handoff + shared-cache insert path, zero
/// divergences allowed. A failing seed is a deterministic repro.
#[test]
fn interleavings_over_64_seeds_never_diverge() {
    let _g = RIG.lock().unwrap_or_else(|e| e.into_inner());
    let expected = isolated_run(&[HOT_BRANCHY], JitOptions::default()).remove(0).0;
    let mut distinct_traces = std::collections::HashSet::new();
    let mut saw_pool = false;
    let mut saw_shared = false;
    for seed in 0..64 {
        let (r0, r1, trace) = scheduled_pair(seed, true);
        for r in r0.iter().chain(&r1) {
            assert_eq!(*r, expected, "seed {seed} diverged");
        }
        saw_pool |= trace.iter().any(|e| e.1.starts_with("pool."));
        saw_shared |= trace.iter().any(|e| e.1.starts_with("shared."));
        distinct_traces.insert(trace);
    }
    assert!(saw_pool, "schedules must pass through the compiler-pool handoff");
    assert!(saw_shared, "schedules must pass through the shared-cache paths");
    assert!(
        distinct_traces.len() > 1,
        "64 seeds must actually permute the interleaving"
    );
}

/// Same seed, same schedule, same trace: the rig's reproducibility
/// contract over the real VM (not just toy yield loops). Uses the
/// synchronous-compile configuration so every yield point belongs to a
/// scheduled thread and the trace is a pure function of the seed.
#[test]
fn same_seed_reproduces_the_same_interleaving() {
    let _g = RIG.lock().unwrap_or_else(|e| e.into_inner());
    let (a0, a1, ta) = scheduled_pair(12345, false);
    let (b0, b1, tb) = scheduled_pair(12345, false);
    assert_eq!(a0, b0);
    assert_eq!(a1, b1);
    assert_eq!(ta, tb, "identical seeds must replay identical schedules");
}

/// No false sharing: a realm whose shape tables diverged (different
/// globals evaluated first) captures a different fingerprint, so it must
/// miss the other realm's published trees entirely.
#[test]
fn diverged_realm_misses_the_shared_key() {
    let mt = MultiTenantVm::with_options(
        {
            let mut o = JitOptions::default();
            o.background_compile = false; // deterministic counters
            o
        },
        1,
    );
    // Publisher: a pristine realm runs the hot program.
    let mut pub_vm = mt.realm_vm();
    pub_vm.eval(HOT_BRANCHY).expect("publisher run");
    assert!(mt.shared_stats().publishes >= 1, "publisher must publish");

    // Diverged consumer: same program text, but its realm evaluated other
    // globals first, so its fingerprint differs from the publisher's.
    let mut div_vm = mt.realm_vm();
    div_vm.eval("var zig = { q: 1, r: 2 }; zig.q").expect("divergence setup");
    div_vm.eval(HOT_BRANCHY).expect("diverged run");
    let div_stats = div_vm.profile().cloned().unwrap_or_default();
    assert_eq!(
        div_stats.shared_cache_hits, 0,
        "diverged realm must never hit the pristine realm's key"
    );
    assert_eq!(div_stats.shared_cache_installed_trees, 0);

    // Control: a pristine consumer with the identical eval history hits.
    let mut same_vm = mt.realm_vm();
    same_vm.eval(HOT_BRANCHY).expect("pristine consumer run");
    let same_stats = same_vm.profile().cloned().unwrap_or_default();
    assert!(
        same_stats.shared_cache_hits >= 1,
        "pristine realm must reuse the published tree: {same_stats:?}"
    );
    assert!(same_stats.shared_cache_installed_trees >= 1);
}

/// Regression (Send-audit hazard): concurrent saves of the persistent
/// cache to one path used a pid-only temp name, so two realm threads
/// interleaved writes into the same temp file and could rename a torn
/// image into place. With per-writer temp names every interleaving ends
/// with a valid cache file (last writer wins, never corruption).
#[test]
fn concurrent_cache_saves_never_tear_the_file() {
    let dir = std::env::temp_dir().join(format!("tm_mt_save_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("shared.tmc");
    let mt = MultiTenantVm::new(1);
    // One eval per realm: every realm saves from an identical fresh-realm
    // state, so whichever save wins the race, the stored fingerprint is
    // the one a fresh warm-starting realm presents.
    let jobs: Vec<RealmJob> = (0..4)
        .map(|_| {
            let mut j = RealmJob::repeat(HOT_BRANCHY, 1);
            j.cache_path = Some(path.clone());
            j
        })
        .collect();
    let reports = mt.run(jobs);
    let expected = isolated_run(&[HOT_BRANCHY], JitOptions::default()).remove(0).0;
    for rep in &reports {
        for r in &rep.results {
            assert_eq!(*r, expected);
        }
    }
    // The surviving file must be a loadable, revalidatable image: a
    // fresh realm warm-starts from it without a cache error.
    let mut warm = CoreVm::new(CoreEngine::Tracing);
    warm.set_cache_path(Some(path.clone()));
    warm.eval(HOT_BRANCHY).expect("warm run");
    assert!(
        warm.last_cache_error().is_none(),
        "torn cache image: {:?}",
        warm.last_cache_error()
    );
    let stats = warm.profile().cloned().unwrap_or_default();
    assert!(
        stats.cache_loaded_trees >= 1,
        "warm start must actually load trees: {stats:?}"
    );
    // No stray temp files left behind by the racing writers.
    let strays: Vec<_> = std::fs::read_dir(&dir)
        .expect("readdir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
        .collect();
    assert!(strays.is_empty(), "leftover temp files: {strays:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A persisted `.tmc` composes with the shared cache: the first realm to
/// load it republishes the trees, so sibling realms in the same process
/// warm-start through memory without touching the file.
#[test]
fn one_tmc_warm_starts_all_realms() {
    let dir = std::env::temp_dir().join(format!("tm_mt_warm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("warm.tmc");
    // Cold process: one realm compiles and saves.
    {
        let mt = MultiTenantVm::new(1);
        let mut j = RealmJob::repeat(HOT_BRANCHY, 1);
        j.cache_path = Some(path.clone());
        mt.run(vec![j]);
    }
    // Warm process: realm 0 loads the file; realm 1 has no cache path at
    // all, yet must still find the trees through the shared cache.
    let mt = MultiTenantVm::with_options(
        {
            let mut o = JitOptions::default();
            o.background_compile = false;
            o
        },
        1,
    );
    let mut loader = mt.realm_vm();
    loader.set_cache_path(Some(path.clone()));
    loader.eval(HOT_BRANCHY).expect("loader run");
    let ls = loader.profile().cloned().unwrap_or_default();
    assert!(ls.cache_loaded_trees >= 1, "loader warm-starts from disk: {ls:?}");
    assert!(
        mt.shared_stats().publishes >= 1,
        "loaded trees must be republished to the shared cache"
    );
    let mut sibling = mt.realm_vm();
    sibling.eval(HOT_BRANCHY).expect("sibling run");
    let ss = sibling.profile().cloned().unwrap_or_default();
    assert!(
        ss.shared_cache_installed_trees >= 1,
        "sibling warm-starts from memory: {ss:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
