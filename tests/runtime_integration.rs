//! Integration tests of runtime behavior under the tracing JIT: GC safe
//! points, shape guards across object workloads, constructor-heavy loops,
//! and FFI fast-call specialization.

use tracemonkey::{Engine, JitOptions, Vm};

fn traced_eval(src: &str) -> (Option<f64>, Vm) {
    let mut vm = Vm::new(Engine::Tracing);
    let v = vm.eval_number(src).expect("program runs");
    (v, vm)
}

#[test]
fn gc_runs_during_traced_execution_without_corruption() {
    let mut vm = Vm::new(Engine::Tracing);
    vm.realm.heap.set_gc_threshold(4096); // force frequent collections
    let v = vm
        .eval_number(
            "var keep = [];
             var sum = 0;
             for (var i = 0; i < 20000; i++) {
                 var s = 'str' + (i % 100);
                 sum += s.length;
                 if (i % 1000 === 0) keep.push(s);
             }
             sum + keep.length",
        )
        .expect("runs with frequent GC");
    // 'str' + k: lengths 4 (k<10) and 5 (k<100): per 100: 10*4 + 90*5 = 490.
    assert_eq!(v, Some(490.0 * 200.0 + 20.0));
    assert!(vm.realm.heap.gc_stats().collections > 0, "collections actually happened");
}

#[test]
fn gc_preserves_trace_constants() {
    // Function objects and prototype objects referenced by compiled traces
    // must survive collections (they are rooted through globals).
    let mut vm = Vm::new(Engine::Tracing);
    vm.realm.heap.set_gc_threshold(2048);
    let v = vm
        .eval_number(
            "function Point(x) { this.x = x; }
             var total = 0;
             for (var i = 0; i < 5000; i++) {
                 var p = new Point(i % 10);
                 total += p.x;
             }
             total",
        )
        .expect("constructor loop under GC pressure");
    assert_eq!(v, Some(4.5 * 5000.0));
}

#[test]
fn shape_guards_catch_shape_changes() {
    // The loop reads o.a through a shape guard; adding a property later
    // changes the shape, the guard exits, and execution stays correct.
    let (v, _) = traced_eval(
        "var o = {a: 1};
         var s = 0;
         for (var i = 0; i < 1000; i++) {
             s += o.a;
             if (i === 500) o.b = 99; // shape transition mid-loop
         }
         s + o.b",
    );
    assert_eq!(v, Some(1099.0));
}

#[test]
fn polymorphic_shapes_are_handled() {
    let (v, _) = traced_eval(
        "function mk(kind, n) {
             if (kind) return {a: n, b: 0};
             return {b: n};
         }
         var s = 0;
         for (var i = 0; i < 2000; i++) {
             var o = mk(i % 2, i % 7);
             s += o.b + (i % 2 ? o.a : 0);
         }
         s",
    );
    let mut check = 0.0;
    for i in 0..2000 {
        let n = (i % 7) as f64;
        if i % 2 == 1 {
            check += n; // {a: n, b: 0}: b + a = n
        } else {
            check += n; // {b: n}
        }
    }
    assert_eq!(v, Some(check));
}

#[test]
fn prototype_chain_reads_stay_correct() {
    let (v, _) = traced_eval(
        "function Base() { }
         var proto = new Base();
         proto.shared = 5;
         function Child() { }
         var s = 0;
         for (var i = 0; i < 500; i++) {
             var c = new Base();
             s += proto.shared;
         }
         s",
    );
    assert_eq!(v, Some(2500.0));
}

#[test]
fn fast_call_natives_specialize_on_trace() {
    // Math natives with FastNative annotations should still be exact.
    let (v, vm) = traced_eval(
        "var s = 0;
         for (var i = 0; i < 3000; i++) {
             s += Math.sqrt(i) * Math.abs(-2) + Math.min(i, 10);
         }
         Math.floor(s)",
    );
    let mut check = 0.0f64;
    for i in 0..3000 {
        check += (i as f64).sqrt() * 2.0 + (i as f64).min(10.0);
    }
    assert_eq!(v, Some(check.floor()));
    let p = vm.profile().unwrap();
    assert!(p.native_bytecode_fraction() > 0.9, "math loop should trace");
}

#[test]
fn char_code_at_nan_sentinel_is_guarded() {
    // charCodeAt past the end returns NaN; the trace guards the sentinel.
    let (v, _) = traced_eval(
        "var s = 'abc';
         var hits = 0;
         for (var i = 0; i < 900; i++) {
             var c = s.charCodeAt(i % 5); // indexes 3 and 4 are NaN
             if (c === c) hits++;         // NaN !== NaN
         }
         hits",
    );
    assert_eq!(v, Some(540.0));
}

#[test]
fn array_growth_transitions_to_helper_path() {
    let (v, _) = traced_eval(
        "var a = [];
         for (var i = 0; i < 5000; i++) a[i] = i;  // always appends (grow path)
         var s = 0;
         for (var i = 0; i < 5000; i++) s += a[i]; // always in bounds
         s",
    );
    assert_eq!(v, Some((4999.0 * 5000.0) / 2.0));
}

#[test]
fn interrupt_set_by_native_stops_traced_loop() {
    // Register a native that sets the preemption flag after N calls; the
    // traced loop calling it must stop with Interrupted (§6.4/§6.5).
    use tracemonkey::runtime::{NativeEffects, Realm, RuntimeError, Value};
    fn armed(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
        let n = realm.heap.number_value(args.get(1).copied().unwrap_or(Value::ZERO));
        if n == Some(2500.0) {
            realm.interrupt = true;
        }
        Ok(Value::UNDEFINED)
    }
    let mut vm = Vm::with_options(Engine::Tracing, JitOptions::default());
    let id = vm.realm.register_native(
        "armAt",
        armed,
        NativeEffects { may_reenter: false, accesses_globals: false, allocates: false },
        None,
    );
    let f = vm.realm.new_native_function(id);
    vm.realm.define_global("armAt", f);
    let err = vm.eval("var i = 0; while (true) { armAt(i); i++; }").unwrap_err();
    assert!(matches!(
        err,
        tracemonkey::VmError::Runtime(tracemonkey::RuntimeError::Interrupted)
    ));
}

#[test]
fn string_interning_behavior_is_observable() {
    // Content equality (===) between distinct heap strings.
    let (v, _) = traced_eval(
        "var hits = 0;
         for (var i = 0; i < 600; i++) {
             var a = 'pre' + (i % 3);
             var b = 'pre' + (i % 3);
             if (a === b) hits++;
         }
         hits",
    );
    assert_eq!(v, Some(600.0));
}

#[test]
fn negative_zero_and_nan_semantics_survive_tracing() {
    let (v, _) = traced_eval(
        "var nzs = 0; var nans = 0;
         for (var i = 0; i < 500; i++) {
             var z = -1 * 0;
             if (1 / z < 0) nzs++;       // -0 detection
             var n = 0 / 0;
             if (n !== n) nans++;        // NaN detection
         }
         nzs * 1000 + nans",
    );
    assert_eq!(v, Some(500_500.0));
}
