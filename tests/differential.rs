//! Differential testing: every engine must produce identical results and
//! identical `print` output on the same programs (the recorder/interpreter
//! "semantic equivalence" requirement of the paper's §6.3).

use tracemonkey::{Engine, Vm};

fn run(engine: Engine, src: &str) -> (String, String) {
    let mut vm = Vm::new(engine);
    let v = vm.eval(src).unwrap_or_else(|e| panic!("{engine:?} failed on {src:?}: {e}"));
    let text = tracemonkey::runtime::ops::to_display(&mut vm.realm, v);
    (text, vm.output().to_owned())
}

fn check(src: &str) {
    let baseline = run(Engine::Interp, src);
    for engine in [Engine::FastInterp, Engine::Method, Engine::Tracing] {
        let got = run(engine, src);
        assert_eq!(baseline, got, "{engine:?} disagrees on: {src}");
    }
}

#[test]
fn arithmetic_kernels() {
    check("var s = 0; for (var i = 0; i < 2000; i++) s += i; s");
    check("var s = 0; for (var i = 0; i < 2000; i++) s -= i * 3; s");
    check("var s = 1; for (var i = 1; i < 30; i++) s *= 2; s");
    check("var s = 0; for (var i = 1; i < 500; i++) s += 1000 / i; Math.floor(s * 100)");
    check("var s = 0; for (var i = 1; i < 500; i++) s += 1000 % i; s");
    check("var s = 1e9; for (var i = 0; i < 500; i++) s += 1e7; s");
    check("var s = 0.25; for (var i = 0; i < 500; i++) s = s * 1.01 + 0.5; Math.floor(s)");
}

#[test]
fn bitops_kernels() {
    check("var v = 4294967296; for (var i = 0; i < 2000; i++) v = v & i; v");
    check("var v = 0; for (var i = 0; i < 2000; i++) v = (v | (1 << (i & 31))) >>> 1; v");
    check("var v = 0; for (var i = 0; i < 2000; i++) v ^= i << (i & 15); v");
    check("var v = 0; for (var i = 0; i < 2000; i++) v = ~v + (i >> 2); v");
    check("var s = 0; for (var i = -500; i < 500; i++) s += (i >>> 3) & 0xff; s");
}

#[test]
fn control_flow() {
    check("var a = 0, b = 0; for (var i = 0; i < 1000; i++) { if (i % 3 == 0) a++; else if (i % 3 == 1) b++; else { a += 2; b -= 1; } } a * 10000 + b");
    check("var s = 0; for (var i = 0; i < 500; i++) { s += i % 2 ? i : -i; } s");
    check("var n = 0; var i = 0; while (true) { i++; if (i % 7 == 0) continue; n++; if (i > 300) break; } n");
    check("var s = 0; var i = 0; do { s += i & 3 && i % 5; i++; } while (i < 400); s");
}

#[test]
fn nested_loops() {
    check("var s = 0; for (var i = 0; i < 40; i++) for (var j = 0; j < 40; j++) s += i * j; s");
    check("var s = 0; for (var i = 0; i < 30; i++) { for (var j = 0; j < i; j++) { for (var k = 0; k < j; k++) s++; } } s");
    check("var s = 0; for (var i = 0; i < 50; i++) { var j = 0; while (j < i % 7) { s += j; j++; } } s");
}

#[test]
fn functions_and_this() {
    check("function f(a, b) { return a * 10 + b; } var s = 0; for (var i = 0; i < 500; i++) s += f(i % 7, i % 3); s");
    check("function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(17)");
    check("function P(x, y) { this.x = x; this.y = y; } function norm(p) { return p.x * p.x + p.y * p.y; } var s = 0; for (var i = 0; i < 300; i++) s += norm(new P(i % 9, i % 5)); s");
    check("function outer(n) { return inner(n) + 1; } function inner(n) { return n * 2; } var s = 0; for (var i = 0; i < 400; i++) s += outer(i); s");
}

#[test]
fn arrays_and_objects() {
    check("var a = []; for (var i = 0; i < 500; i++) a[i] = i * i; var s = 0; for (var i = 0; i < 500; i++) s += a[i]; s");
    check("var a = []; for (var i = 0; i < 300; i++) a.push(i % 10); var s = 0; for (var i = 0; i < a.length; i++) s += a[i]; s + a.length");
    check("var o = {count: 0, step: 2}; for (var i = 0; i < 500; i++) o.count += o.step; o.count");
    check("var grid = []; for (var i = 0; i < 20; i++) { grid[i] = []; for (var j = 0; j < 20; j++) grid[i][j] = i ^ j; } var s = 0; for (var i = 0; i < 20; i++) for (var j = 0; j < 20; j++) s += grid[i][j]; s");
}

#[test]
fn strings() {
    check("var s = ''; for (var i = 0; i < 60; i++) s += 'ab'; s.length");
    check("var src = 'the quick brown fox'; var h = 0; for (var r = 0; r < 50; r++) for (var i = 0; i < src.length; i++) h = (h * 31 + src.charCodeAt(i)) & 0xffffff; h");
    check("var s = ''; for (var i = 0; i < 40; i++) s += String.fromCharCode(65 + (i % 26)); s");
    check("var w = 'hello'; var c = 0; for (var i = 0; i < 200; i++) if (w.charAt(i % 5) === 'l') c++; c");
    check("var t = 'a,b,c,d'; var total = 0; for (var i = 0; i < 50; i++) { var parts = t.split(','); total += parts.length; } total");
}

#[test]
fn type_transitions() {
    check("var v = 0; for (var i = 0; i < 400; i++) { if (i === 200) v = 0.5; v = v + 1; } v");
    check("var t; for (var i = 0; i < 300; i++) t = i * 1.5; t");
    check("var x = 1073741000; for (var i = 0; i < 2000; i++) x += 1; x"); // i31 overflow mid-loop
    check("var s = 0; for (var i = 0; i < 300; i++) { var v = i % 2 == 0 ? 1 : 1.5; s += v; } s");
}

#[test]
fn math_builtins() {
    check("var s = 0; for (var i = 0; i < 500; i++) s += Math.sin(i * 0.01) + Math.cos(i * 0.02); Math.floor(s * 1e6)");
    check("var s = 0; for (var i = 1; i < 300; i++) s += Math.sqrt(i) + Math.log(i); Math.floor(s * 1000)");
    check("var m = 0; for (var i = 0; i < 300; i++) m = Math.max(m, (i * 37) % 101); m");
    check("var s = 0; for (var i = 0; i < 200; i++) s += Math.abs(100 - i) + Math.pow(2, i % 8); s");
    check("var s = 0; for (var i = 0; i < 300; i++) s += Math.floor(i / 7) + Math.ceil(i / 3); s");
}

#[test]
fn print_side_effects_in_loops() {
    check("for (var i = 0; i < 50; i++) if (i % 17 == 0) print('t', i); 0");
}

#[test]
fn equality_semantics() {
    check("var c = 0; for (var i = 0; i < 300; i++) { if (i % 2 == 0) c += i === i ? 1 : 0; if ('5' == 5) c++; if (null == undefined) c++; } c");
    check("var c = 0; var a = [1]; var b = [1]; for (var i = 0; i < 100; i++) { if (a === a) c++; if (a === b) c += 100; } c");
}

#[test]
fn gc_heavy_loops() {
    // Force collections during traced execution.
    check(
        "var keep = [];
         for (var i = 0; i < 3000; i++) {
             var s = 'x' + i + 'y';
             if (i % 500 === 0) keep.push(s);
         }
         keep.length",
    );
}

#[test]
fn deep_expressions() {
    check("var s = 0; for (var i = 1; i < 300; i++) s += ((i * 3 + 1) ^ (i >> 1)) % ((i & 7) + 2) + (i % 2 ? i / 2 : -i); Math.floor(s)");
}
