//! Verifier soak over the benchmark suite: every trace the tracer records
//! while running the SunSpider-style programs in `crates/bench/suite` must
//! pass the static trace verifier. Recording aborts for *policy* reasons
//! are fine; a `VerifyFailed` abort means the recorder emitted a malformed
//! trace and is always a bug (and a post-filter verifier failure panics
//! outright, failing the test by itself).
//!
//! Programs run with a bounded step budget so the debug-profile soak stays
//! fast; hitting the budget still exercises plenty of recordings.

use std::path::PathBuf;

use tracemonkey::jit::events::{AbortReason, TraceEvent};
use tracemonkey::{Engine, JitOptions, Vm};

#[test]
fn every_bench_suite_trace_verifies() {
    let suite = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/bench/suite");
    let mut programs: Vec<PathBuf> = std::fs::read_dir(&suite)
        .expect("bench suite directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "js"))
        .collect();
    programs.sort();
    assert!(programs.len() >= 20, "the suite should be present, found {}", programs.len());

    let mut recordings = 0usize;
    for path in &programs {
        let src = std::fs::read_to_string(path).expect("suite program reads");
        let mut opts = JitOptions::default();
        opts.verify = true;
        opts.log_events = true;
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        vm.step_budget = 3_000_000;
        // Budget exhaustion or a guest error is acceptable here; compiling
        // a malformed trace is not.
        let _ = vm.eval(&src);
        let m = vm.monitor().expect("tracing run keeps its monitor");
        let events = m.events.events();
        recordings += events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RecordFinish { .. }))
            .count();
        let verify_failures: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::RecordAbort { reason: AbortReason::VerifyFailed(_) })
            })
            .collect();
        assert!(
            verify_failures.is_empty(),
            "{}: recorder produced malformed traces: {verify_failures:?}",
            path.display()
        );
    }
    // The soak is only meaningful if the suite actually traced.
    assert!(recordings >= 20, "expected many recorded traces, got {recordings}");
}
