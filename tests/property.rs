//! Property-based tests (on the in-tree `tm-support` harness) covering
//! the core invariant families:
//!
//! * value tagging round-trips (Figure 9);
//! * shared operator semantics algebraic properties;
//! * LIR forward/backward filters preserve trace semantics (random pure
//!   integer expression DAGs executed with filters on vs. off);
//! * the register allocator never mixes up live values (implied by the
//!   same execution equivalence under register pressure);
//! * whole-program engine agreement on a grammar template.
//!
//! Each property runs at least as many cases as the old proptest setup
//! (256 default; the LIR DAG properties 128; the template programs 24).
//! On failure the harness prints the case seed — replay with
//! `TM_PROP_SEED=<seed> cargo test <test-name>`.

use tm_support::prop::{self, Config};
use tm_support::{prop_assert, prop_assert_eq, TmRng};
use tracemonkey::lir::{FilterOptions, Lir, LirBuffer, LirType};
use tracemonkey::nanojit::{assemble, execute, NoNesting};
use tracemonkey::runtime::{ops, Realm};
use tracemonkey::Value;

/// A finite, normal-or-zero double (the old `f64::NORMAL | f64::ZERO`
/// strategy): random sign, mantissa in `[1, 2)`, binary exponent in
/// `[-300, 300]`, with an occasional exact zero.
fn gen_normal_or_zero(g: &mut TmRng) -> f64 {
    if g.gen_bool(0.05) {
        return 0.0;
    }
    let mantissa = 1.0 + g.unit_f64();
    let exponent = g.gen_range(-300i32..301);
    let sign = if g.gen_bool(0.5) { 1.0 } else { -1.0 };
    sign * mantissa * 2f64.powi(exponent)
}

fn gen_i32(g: &mut TmRng) -> i32 {
    g.next_u32() as i32
}

#[test]
fn value_int_round_trip() {
    prop::check("value_int_round_trip", &Config::default(), |g| {
        let i = g.gen_range(-(1i64 << 30)..(1i64 << 30));
        let v = Value::new_int_checked(i).expect("in range");
        prop_assert_eq!(v.as_int(), Some(i as i32));
        prop_assert_eq!(Value::from_raw(v.raw()), v);
        prop_assert!(v.is_number());
        Ok(())
    });
}

#[test]
fn number_boxing_preserves_value() {
    prop::check("number_boxing_preserves_value", &Config::default(), |g| {
        let d = gen_normal_or_zero(g);
        let mut realm = Realm::new();
        let v = realm.heap.number(d);
        prop_assert_eq!(realm.heap.number_value(v), Some(d));
        Ok(())
    });
}

#[test]
fn to_int32_is_additive_mod_2_32() {
    prop::check("to_int32_is_additive_mod_2_32", &Config::default(), |g| {
        // ToInt32(a) + ToInt32(b) ≡ a + b (mod 2^32): the property the
        // trace's wrapping integer ops rely on.
        let (a, b) = (gen_i32(g), gen_i32(g));
        let wrap = ops::double_to_int32(f64::from(a) + f64::from(b));
        prop_assert_eq!(wrap, a.wrapping_add(b));
        Ok(())
    });
}

#[test]
fn strict_eq_is_reflexive_for_non_nan() {
    prop::check("strict_eq_is_reflexive_for_non_nan", &Config::default(), |g| {
        let i = gen_i32(g);
        let mut realm = Realm::new();
        let v = realm.heap.number_i32(i);
        prop_assert!(ops::strict_eq(&realm, v, v));
        Ok(())
    });
}

#[test]
fn add_values_matches_f64_semantics() {
    prop::check("add_values_matches_f64_semantics", &Config::default(), |g| {
        let (a, b) = (g.gen_range(-1e9..1e9), g.gen_range(-1e9..1e9));
        let mut realm = Realm::new();
        let va = realm.heap.number(a);
        let vb = realm.heap.number(b);
        let sum = ops::add_values(&mut realm, va, vb).expect("numbers add");
        prop_assert_eq!(realm.heap.number_value(sum), Some(a + b));
        Ok(())
    });
}

/// A random pure-integer expression DAG over two imports, expressed as LIR.
#[derive(Debug, Clone)]
enum Node {
    Import(u8),
    Const(i32),
    Bin(u8, Box<Node>, Box<Node>),
    Un(u8, Box<Node>),
}

/// The old recursive strategy: leaves are imports/constants, inner nodes
/// binary (3:1 over unary), recursion capped at `depth`.
fn gen_node(g: &mut TmRng, depth: u32) -> Node {
    if depth == 0 || g.gen_bool(0.3) {
        if g.gen_bool(0.4) {
            Node::Import(g.gen_range(0u32..2) as u8)
        } else {
            Node::Const(g.gen_range(-1000i32..1000))
        }
    } else if g.gen_bool(0.75) {
        Node::Bin(
            g.gen_range(0u32..8) as u8,
            Box::new(gen_node(g, depth - 1)),
            Box::new(gen_node(g, depth - 1)),
        )
    } else {
        Node::Un(g.gen_range(0u32..2) as u8, Box::new(gen_node(g, depth - 1)))
    }
}

fn emit(node: &Node, buf: &mut LirBuffer, imports: &[u32; 2]) -> u32 {
    match node {
        Node::Import(i) => imports[*i as usize % 2],
        Node::Const(c) => buf.emit(Lir::ConstI(*c)),
        Node::Bin(op, a, b) => {
            let x = emit(a, buf, imports);
            let y = emit(b, buf, imports);
            buf.emit(match op % 8 {
                0 => Lir::AddI(x, y),
                1 => Lir::SubI(x, y),
                2 => Lir::MulI(x, y),
                3 => Lir::AndI(x, y),
                4 => Lir::OrI(x, y),
                5 => Lir::XorI(x, y),
                6 => Lir::ShlI(x, y),
                _ => Lir::ShrI(x, y),
            })
        }
        Node::Un(op, a) => {
            let x = emit(a, buf, imports);
            buf.emit(match op % 2 {
                0 => Lir::NotI(x),
                _ => Lir::NegI(x),
            })
        }
    }
}

/// Builds a one-shot trace computing `node` into AR slot 2 and executes it.
fn eval_node(node: &Node, a: i32, b: i32, opts: FilterOptions) -> i32 {
    let mut buf = LirBuffer::new(opts);
    let i0 = buf.emit(Lir::Import { slot: 0, ty: LirType::Int });
    let i1 = buf.emit(Lir::Import { slot: 1, ty: LirType::Int });
    let v = emit(node, &mut buf, &[i0, i1]);
    buf.emit(Lir::WriteAr { slot: 2, v });
    let e = buf.alloc_exit();
    buf.emit(Lir::End(e));
    let mut trace = buf.into_trace();
    let liveness = tracemonkey::lir::ExitLiveness { live_slots: vec![vec![2]; 8] };
    tracemonkey::lir::run_backward_filters(&mut trace, &liveness, &[]);
    let frag = assemble(&trace);
    let mut realm = Realm::new();
    let mut ar = vec![i64::from(a) as u64, i64::from(b) as u64, 0];
    execute(&[frag], 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).expect("pure trace");
    ar[2] as i32
}

/// CSE + folding + demotion + DCE must not change what a trace
/// computes (§5.1's filters are semantics-preserving).
#[test]
fn filters_preserve_semantics() {
    prop::check("filters_preserve_semantics", &Config::with_cases(128), |g| {
        let node = gen_node(g, 5);
        let (a, b) = (gen_i32(g), gen_i32(g));
        let unopt = eval_node(&node, a, b, FilterOptions {
            fold: false, cse: false, demote: false, softfloat: false,
        });
        let opt = eval_node(&node, a, b, FilterOptions::default());
        prop_assert_eq!(unopt, opt);
        Ok(())
    });
}

/// The greedy register allocator must produce correct code even under
/// heavy pressure (many simultaneously-live values): compare against
/// direct evaluation of the DAG.
#[test]
fn regalloc_is_correct_under_pressure() {
    fn direct(node: &Node, a: i32, b: i32) -> i32 {
        match node {
            Node::Import(0) => a,
            Node::Import(_) => b,
            Node::Const(c) => *c,
            Node::Bin(op, x, y) => {
                let (x, y) = (direct(x, a, b), direct(y, a, b));
                match op % 8 {
                    0 => x.wrapping_add(y),
                    1 => x.wrapping_sub(y),
                    2 => x.wrapping_mul(y),
                    3 => x & y,
                    4 => x | y,
                    5 => x ^ y,
                    6 => x.wrapping_shl((y & 31) as u32),
                    _ => x.wrapping_shr((y & 31) as u32),
                }
            }
            Node::Un(op, x) => {
                let x = direct(x, a, b);
                if op % 2 == 0 { !x } else { x.wrapping_neg() }
            }
        }
    }

    prop::check("regalloc_is_correct_under_pressure", &Config::with_cases(128), |g| {
        let count = g.gen_range(1usize..12);
        let nodes: Vec<Node> = (0..count).map(|_| gen_node(g, 5)).collect();
        let (a, b) = (gen_i32(g), gen_i32(g));
        // All nodes' results stay live to the end: XOR them together at
        // the end to force long live ranges (spill pressure).
        let mut buf = LirBuffer::new(FilterOptions { cse: false, fold: false, ..Default::default() });
        let i0 = buf.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let i1 = buf.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let vals: Vec<u32> = nodes.iter().map(|n| emit(n, &mut buf, &[i0, i1])).collect();
        let mut accum = vals[0];
        for &v in &vals[1..] {
            accum = buf.emit(Lir::XorI(accum, v));
        }
        buf.emit(Lir::WriteAr { slot: 2, v: accum });
        let e = buf.alloc_exit();
        buf.emit(Lir::End(e));
        let trace = buf.into_trace();
        let frag = assemble(&trace);
        let mut realm = Realm::new();
        let mut ar = vec![i64::from(a) as u64, i64::from(b) as u64, 0];
        execute(&[frag], 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).expect("pure trace");

        let mut expect = direct(&nodes[0], a, b);
        for n in &nodes[1..] {
            expect ^= direct(n, a, b);
        }
        prop_assert_eq!(ar[2] as i32, expect);
        Ok(())
    });
}

/// Mini guest programs over a grammar template: all engines agree.
#[test]
fn template_programs_agree() {
    prop::check("template_programs_agree", &Config::with_cases(24), |g| {
        let n = g.gen_range(10u32..200);
        let k = g.gen_range(1i32..50);
        let m = g.gen_range(2i32..9);
        let init = g.gen_range(-5i32..5);
        let src = format!(
            "var s = {init}; for (var i = 0; i < {n}; i++) {{ if (i % {m}) s += {k}; else s -= i; }} s"
        );
        let mut vi = tracemonkey::Vm::new(tracemonkey::Engine::Interp);
        let ri = vi.eval_number(&src).unwrap();
        let mut vt = tracemonkey::Vm::new(tracemonkey::Engine::Tracing);
        let rt = vt.eval_number(&src).unwrap();
        prop_assert_eq!(ri, rt);
        Ok(())
    });
}
