//! Property-based tests (proptest) on core invariants:
//!
//! * value tagging round-trips (Figure 9);
//! * shared operator semantics algebraic properties;
//! * LIR forward/backward filters preserve trace semantics (random pure
//!   integer expression DAGs executed with filters on vs. off);
//! * the register allocator never mixes up live values (implied by the
//!   same execution equivalence under register pressure).

use proptest::prelude::*;
use tracemonkey::lir::{FilterOptions, Lir, LirBuffer, LirType};
use tracemonkey::nanojit::{assemble, execute, NoNesting};
use tracemonkey::runtime::{ops, Realm};
use tracemonkey::Value;

proptest! {
    #[test]
    fn value_int_round_trip(i in -(1i64 << 30)..(1i64 << 30)) {
        let v = Value::new_int_checked(i).expect("in range");
        prop_assert_eq!(v.as_int(), Some(i as i32));
        prop_assert_eq!(Value::from_raw(v.raw()), v);
        prop_assert!(v.is_number());
    }

    #[test]
    fn number_boxing_preserves_value(d in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
        let mut realm = Realm::new();
        let v = realm.heap.number(d);
        prop_assert_eq!(realm.heap.number_value(v), Some(d));
    }

    #[test]
    fn to_int32_is_additive_mod_2_32(a in any::<i32>(), b in any::<i32>()) {
        // ToInt32(a) + ToInt32(b) ≡ a + b (mod 2^32): the property the
        // trace's wrapping integer ops rely on.
        let realm = Realm::new();
        let _ = &realm;
        let wrap = ops::double_to_int32(f64::from(a) + f64::from(b));
        prop_assert_eq!(wrap, a.wrapping_add(b));
    }

    #[test]
    fn strict_eq_is_reflexive_for_non_nan(i in any::<i32>()) {
        let mut realm = Realm::new();
        let v = realm.heap.number_i32(i);
        prop_assert!(ops::strict_eq(&realm, v, v));
    }

    #[test]
    fn add_values_matches_f64_semantics(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let mut realm = Realm::new();
        let va = realm.heap.number(a);
        let vb = realm.heap.number(b);
        let sum = ops::add_values(&mut realm, va, vb).expect("numbers add");
        prop_assert_eq!(realm.heap.number_value(sum), Some(a + b));
    }
}

/// A random pure-integer expression DAG over two imports, expressed as LIR.
#[derive(Debug, Clone)]
enum Node {
    Import(u8),
    Const(i32),
    Bin(u8, Box<Node>, Box<Node>),
    Un(u8, Box<Node>),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        (0u8..2).prop_map(Node::Import),
        (-1000i32..1000).prop_map(Node::Const),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (0u8..8, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Node::Bin(op, Box::new(a), Box::new(b))),
            (0u8..2, inner).prop_map(|(op, a)| Node::Un(op, Box::new(a))),
        ]
    })
}

fn emit(node: &Node, buf: &mut LirBuffer, imports: &[u32; 2]) -> u32 {
    match node {
        Node::Import(i) => imports[*i as usize % 2],
        Node::Const(c) => buf.emit(Lir::ConstI(*c)),
        Node::Bin(op, a, b) => {
            let x = emit(a, buf, imports);
            let y = emit(b, buf, imports);
            buf.emit(match op % 8 {
                0 => Lir::AddI(x, y),
                1 => Lir::SubI(x, y),
                2 => Lir::MulI(x, y),
                3 => Lir::AndI(x, y),
                4 => Lir::OrI(x, y),
                5 => Lir::XorI(x, y),
                6 => Lir::ShlI(x, y),
                _ => Lir::ShrI(x, y),
            })
        }
        Node::Un(op, a) => {
            let x = emit(a, buf, imports);
            buf.emit(match op % 2 {
                0 => Lir::NotI(x),
                _ => Lir::NegI(x),
            })
        }
    }
}

/// Builds a one-shot trace computing `node` into AR slot 2 and executes it.
fn eval_node(node: &Node, a: i32, b: i32, opts: FilterOptions) -> i32 {
    let mut buf = LirBuffer::new(opts);
    let i0 = buf.emit(Lir::Import { slot: 0, ty: LirType::Int });
    let i1 = buf.emit(Lir::Import { slot: 1, ty: LirType::Int });
    let v = emit(node, &mut buf, &[i0, i1]);
    buf.emit(Lir::WriteAr { slot: 2, v });
    let e = buf.alloc_exit();
    buf.emit(Lir::End(e));
    let mut trace = buf.into_trace();
    let liveness = tracemonkey::lir::ExitLiveness { live_slots: vec![vec![2]; 8] };
    tracemonkey::lir::run_backward_filters(&mut trace, &liveness, &[]);
    let frag = assemble(&trace);
    let mut realm = Realm::new();
    let mut ar = vec![i64::from(a) as u64, i64::from(b) as u64, 0];
    execute(&[frag], 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).expect("pure trace");
    ar[2] as i32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSE + folding + demotion + DCE must not change what a trace
    /// computes (§5.1's filters are semantics-preserving).
    #[test]
    fn filters_preserve_semantics(node in node_strategy(), a in any::<i32>(), b in any::<i32>()) {
        let unopt = eval_node(&node, a, b, FilterOptions {
            fold: false, cse: false, demote: false, softfloat: false,
        });
        let opt = eval_node(&node, a, b, FilterOptions::default());
        prop_assert_eq!(unopt, opt);
    }

    /// The greedy register allocator must produce correct code even under
    /// heavy pressure (many simultaneously-live values): compare against
    /// direct evaluation of the DAG.
    #[test]
    fn regalloc_is_correct_under_pressure(nodes in proptest::collection::vec(node_strategy(), 1..12), a in any::<i32>(), b in any::<i32>()) {
        fn direct(node: &Node, a: i32, b: i32) -> i32 {
            match node {
                Node::Import(0) => a,
                Node::Import(_) => b,
                Node::Const(c) => *c,
                Node::Bin(op, x, y) => {
                    let (x, y) = (direct(x, a, b), direct(y, a, b));
                    match op % 8 {
                        0 => x.wrapping_add(y),
                        1 => x.wrapping_sub(y),
                        2 => x.wrapping_mul(y),
                        3 => x & y,
                        4 => x | y,
                        5 => x ^ y,
                        6 => x.wrapping_shl((y & 31) as u32),
                        _ => x.wrapping_shr((y & 31) as u32),
                    }
                }
                Node::Un(op, x) => {
                    let x = direct(x, a, b);
                    if op % 2 == 0 { !x } else { x.wrapping_neg() }
                }
            }
        }
        // All nodes' results stay live to the end: XOR them together at
        // the end to force long live ranges (spill pressure).
        let mut buf = LirBuffer::new(FilterOptions { cse: false, fold: false, ..Default::default() });
        let i0 = buf.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let i1 = buf.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let vals: Vec<u32> = nodes.iter().map(|n| emit(n, &mut buf, &[i0, i1])).collect();
        let mut accum = vals[0];
        for &v in &vals[1..] {
            accum = buf.emit(Lir::XorI(accum, v));
        }
        buf.emit(Lir::WriteAr { slot: 2, v: accum });
        let e = buf.alloc_exit();
        buf.emit(Lir::End(e));
        let trace = buf.into_trace();
        let frag = assemble(&trace);
        let mut realm = Realm::new();
        let mut ar = vec![i64::from(a) as u64, i64::from(b) as u64, 0];
        execute(&[frag], 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).expect("pure trace");

        let mut expect = direct(&nodes[0], a, b);
        for n in &nodes[1..] {
            expect ^= direct(n, a, b);
        }
        prop_assert_eq!(ar[2] as i32, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mini guest programs over a grammar template: all engines agree.
    #[test]
    fn template_programs_agree(
        n in 10u32..200,
        k in 1i32..50,
        m in 2i32..9,
        init in -5i32..5,
    ) {
        let src = format!(
            "var s = {init}; for (var i = 0; i < {n}; i++) {{ if (i % {m}) s += {k}; else s -= i; }} s"
        );
        let mut vi = tracemonkey::Vm::new(tracemonkey::Engine::Interp);
        let ri = vi.eval_number(&src).unwrap();
        let mut vt = tracemonkey::Vm::new(tracemonkey::Engine::Tracing);
        let rt = vt.eval_number(&src).unwrap();
        prop_assert_eq!(ri, rt);
    }
}
