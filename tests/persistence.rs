//! Persistent trace cache: warm-start fidelity and hostile-input tests
//! (docs/PERSISTENCE.md).
//!
//! Each test simulates separate processes with separate `Vm` instances
//! sharing one cache file: a *cold* VM records, compiles, and persists;
//! a *warm* VM must reload every tree (verifier-gated), record nothing
//! new, and compute the identical result. Corrupted, truncated, or
//! version-skewed files must degrade to an ordinary cold start — wrong
//! results or panics are the only failures.

use std::path::PathBuf;

use tracemonkey::{Engine, JitOptions, Vm};

/// Loop-heavy corpus exercising the trace features that persist:
/// shape guards, strings, recursion, type instability, nesting.
const CORPUS: &[(&str, &str)] = &[
    (
        "sieve",
        "var primes = [];
         for (var i = 0; i < 300; i++) primes[i] = true;
         var n = 0;
         for (var i = 2; i < 300; ++i) {
             if (!primes[i]) continue;
             n++;
             for (var k = i + i; k < 300; k += i) primes[k] = false;
         }
         n",
    ),
    (
        "objects",
        "var o = {x: 1, y: 2};
         var s = 0;
         for (var i = 0; i < 400; i++) { o.x = o.x + 1; s += o.x + o.y; }
         s",
    ),
    (
        "strings",
        "var s = '';
         for (var i = 0; i < 150; i++) s = s + 'ab';
         s.length",
    ),
    (
        "recursion",
        "function fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         var s = 0;
         for (var i = 0; i < 18; i++) s += fib(i);
         s",
    ),
    (
        "unstable",
        "var x = 0;
         for (var i = 0; i < 300; i++) { if (i > 150) x += 0.5; else x += 1; }
         x",
    ),
    (
        "overflow",
        "var x = 1073741820;
         var s = 0;
         for (var i = 0; i < 100; i++) { x = x + 1; s += x % 7; }
         s",
    ),
];

struct CacheFile(PathBuf);

impl CacheFile {
    fn new(name: &str) -> CacheFile {
        let p = std::env::temp_dir()
            .join(format!("tm_cache_test_{}_{name}.tmtc", std::process::id()));
        let _ = std::fs::remove_file(&p);
        CacheFile(p)
    }
}

impl Drop for CacheFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn vm_with_cache(path: &PathBuf) -> Vm {
    let mut vm = Vm::with_options(Engine::Tracing, JitOptions::default());
    vm.set_cache_path(Some(path.clone()));
    vm
}

fn eval_num(vm: &mut Vm, src: &str) -> f64 {
    let v = vm.eval(src).expect("program runs");
    vm.realm.heap.number_value(v).expect("numeric result")
}

#[test]
fn warm_run_installs_all_trees_and_records_nothing() {
    for &(name, src) in CORPUS {
        let cache = CacheFile::new(&format!("warm_{name}"));

        // Reference result from the plain interpreter.
        let mut interp_vm = Vm::new(Engine::Interp);
        let expected = eval_num(&mut interp_vm, src);

        // Cold process: record, compile, persist.
        let mut cold = vm_with_cache(&cache.0);
        let cold_result = eval_num(&mut cold, src);
        assert_eq!(cold_result, expected, "{name}: cold result");
        assert_eq!(cold.last_cache_error(), None, "{name}: cold cache error");
        let cold_stats = cold.profile().unwrap().clone();
        let cold_trees = cold.monitor().unwrap().cache.len();
        assert!(cold_trees > 0, "{name}: cold run compiled trees");
        assert!(cache.0.exists(), "{name}: cache file written");

        // Warm process: load, verify, run natively — record nothing.
        let mut warm = vm_with_cache(&cache.0);
        let warm_result = eval_num(&mut warm, src);
        assert_eq!(warm_result, expected, "{name}: warm result");
        assert_eq!(warm.last_cache_error(), None, "{name}: warm cache error");
        let warm_stats = warm.profile().unwrap();
        assert_eq!(warm_stats.cache_hits, 1, "{name}: warm run hit the cache");
        assert_eq!(
            warm_stats.cache_loaded_trees as usize, cold_trees,
            "{name}: every cold tree was installed"
        );
        assert_eq!(
            warm_stats.cache_loaded_fragments, cold_stats.fragments,
            "{name}: every cold fragment was installed"
        );
        assert_eq!(warm_stats.traces_completed, 0, "{name}: zero warm recordings");
        assert_eq!(warm_stats.traces_aborted, 0, "{name}: zero warm aborts");
        assert_eq!(warm_stats.cache_revalidation_failures, 0, "{name}");
        assert!(
            warm_stats.trace_enters > 0,
            "{name}: warm run actually entered loaded traces"
        );
    }
}

#[test]
fn cache_files_are_deterministic_and_warm_runs_do_not_rewrite() {
    for &(name, src) in CORPUS {
        let a = CacheFile::new(&format!("det_a_{name}"));
        let b = CacheFile::new(&format!("det_b_{name}"));
        eval_num(&mut vm_with_cache(&a.0), src);
        eval_num(&mut vm_with_cache(&b.0), src);
        let bytes_a = std::fs::read(&a.0).unwrap();
        let bytes_b = std::fs::read(&b.0).unwrap();
        assert_eq!(bytes_a, bytes_b, "{name}: two cold runs serialize bit-identically");

        // A warm run that records nothing must leave the file untouched.
        eval_num(&mut vm_with_cache(&a.0), src);
        assert_eq!(std::fs::read(&a.0).unwrap(), bytes_a, "{name}: warm run rewrote the file");
    }
}

#[test]
fn loaded_entries_decode_offline() {
    let cache = CacheFile::new("offline");
    let (_, src) = CORPUS[0];
    eval_num(&mut vm_with_cache(&cache.0), src);
    let entries = tracemonkey::jit::persist::read_cache_file(&cache.0).expect("decodes");
    assert_eq!(entries.len(), 1);
    assert!(!entries[0].trees.is_empty());
    for tree in &entries[0].trees {
        assert!(!tree.fragments.is_empty());
        assert!(tree.lir.is_empty(), "diagnostic LIR is never persisted");
    }
}

#[test]
fn truncated_files_fall_back_to_cold_start() {
    let cache = CacheFile::new("trunc");
    let (_, src) = CORPUS[1];
    let mut interp_vm = Vm::new(Engine::Interp);
    let expected = eval_num(&mut interp_vm, src);
    eval_num(&mut vm_with_cache(&cache.0), src);
    let bytes = std::fs::read(&cache.0).unwrap();

    // Sampled prefixes of the file must be rejected cleanly (no panic,
    // no wrong result) and counted as a revalidation failure. (Every
    // single-byte truncation of the *container* is covered cheaply by the
    // unit tests in `tm_core::persist`; here we pay for whole VM runs.)
    let cuts: Vec<usize> =
        (0..12).map(|i| i * bytes.len() / 12).chain([bytes.len() - 1]).collect();
    for cut in cuts {
        std::fs::write(&cache.0, &bytes[..cut]).unwrap();
        let mut vm = vm_with_cache(&cache.0);
        assert_eq!(eval_num(&mut vm, src), expected, "cut at {cut}");
        let stats = vm.profile().unwrap();
        assert_eq!(stats.cache_hits, 0, "cut at {cut}: must not hit");
        assert_eq!(stats.cache_loaded_trees, 0, "cut at {cut}");
        assert_eq!(stats.cache_revalidation_failures, 1, "cut at {cut}");
        assert!(vm.last_cache_error().is_some(), "cut at {cut}: error reported");
    }
}

#[test]
fn bit_flips_fall_back_to_cold_start() {
    let cache = CacheFile::new("flip");
    let (_, src) = CORPUS[1];
    let mut interp_vm = Vm::new(Engine::Interp);
    let expected = eval_num(&mut interp_vm, src);
    eval_num(&mut vm_with_cache(&cache.0), src);
    let bytes = std::fs::read(&cache.0).unwrap();

    let flips: Vec<usize> = (0..12).map(|i| i * bytes.len() / 12).collect();
    for at in flips {
        let mut bad = bytes.clone();
        bad[at] ^= 0x10;
        std::fs::write(&cache.0, &bad).unwrap();
        let mut vm = vm_with_cache(&cache.0);
        assert_eq!(eval_num(&mut vm, src), expected, "flip at {at}");
        let stats = vm.profile().unwrap();
        // A flip is either caught (revalidation failure) or it changed the
        // program key (miss); it must never install a damaged entry while
        // claiming a clean hit.
        if stats.cache_hits > 0 {
            assert_eq!(stats.cache_revalidation_failures, 0);
        } else {
            assert_eq!(
                stats.cache_revalidation_failures + stats.cache_misses,
                1,
                "flip at {at}"
            );
        }
    }
}

#[test]
fn version_skew_and_bad_magic_are_rejected() {
    let cache = CacheFile::new("skew");
    let (_, src) = CORPUS[0];
    eval_num(&mut vm_with_cache(&cache.0), src);
    let bytes = std::fs::read(&cache.0).unwrap();

    // Future format version.
    let mut skewed = bytes.clone();
    skewed[4] = 0xff;
    std::fs::write(&cache.0, &skewed).unwrap();
    let mut vm = vm_with_cache(&cache.0);
    vm.eval(src).unwrap();
    assert!(matches!(
        vm.last_cache_error(),
        Some(tracemonkey::CacheError::BadVersion { .. })
    ));

    // Not a cache file at all.
    std::fs::write(&cache.0, b"#!/bin/sh\necho hello\n").unwrap();
    let mut vm = vm_with_cache(&cache.0);
    vm.eval(src).unwrap();
    assert!(matches!(vm.last_cache_error(), Some(tracemonkey::CacheError::BadMagic)));
    assert_eq!(vm.profile().unwrap().cache_revalidation_failures, 1);

    // In both cases the cold run repaired the file for the next process.
    let mut healed = vm_with_cache(&cache.0);
    healed.eval(src).unwrap();
    assert_eq!(healed.profile().unwrap().cache_hits, 1);
}

#[test]
fn different_programs_share_one_cache_file() {
    let cache = CacheFile::new("multi");
    let (_, src_a) = CORPUS[0];
    let (_, src_b) = CORPUS[4];

    eval_num(&mut vm_with_cache(&cache.0), src_a);

    // Program B misses A's entry and appends its own.
    let mut vm_b = vm_with_cache(&cache.0);
    eval_num(&mut vm_b, src_b);
    assert_eq!(vm_b.profile().unwrap().cache_misses, 1);
    assert_eq!(vm_b.profile().unwrap().cache_hits, 0);

    // Both programs now warm-start from the shared file.
    let mut warm_a = vm_with_cache(&cache.0);
    eval_num(&mut warm_a, src_a);
    assert_eq!(warm_a.profile().unwrap().cache_hits, 1);
    let mut warm_b = vm_with_cache(&cache.0);
    eval_num(&mut warm_b, src_b);
    assert_eq!(warm_b.profile().unwrap().cache_hits, 1);
    assert_eq!(
        tracemonkey::jit::persist::read_cache_file(&cache.0).unwrap().len(),
        2
    );
}

#[test]
fn mutated_realm_fails_the_fingerprint_check() {
    let cache = CacheFile::new("fingerprint");
    let (_, src) = CORPUS[1];
    let mut vm = vm_with_cache(&cache.0);
    let first = eval_num(&mut vm, src);

    // Re-evaluating in the *same* VM reuses the realm the first run
    // mutated (heap growth, RNG draws), so the install-time fingerprint
    // no longer matches and the entry must be rejected — correctness
    // over warmth.
    let second = eval_num(&mut vm, src);
    assert_eq!(first, second);
    assert!(matches!(
        vm.last_cache_error(),
        Some(tracemonkey::CacheError::FingerprintMismatch { .. })
    ));
    assert_eq!(vm.profile().unwrap().cache_revalidation_failures, 1);
    assert_eq!(vm.profile().unwrap().cache_loaded_trees, 0);
}

#[test]
fn disabled_cache_writes_nothing() {
    let cache = CacheFile::new("disabled");
    let (_, src) = CORPUS[0];
    let mut vm = Vm::with_options(Engine::Tracing, JitOptions::default());
    vm.set_cache_path(None);
    vm.eval(src).unwrap();
    assert!(!cache.0.exists());
    assert_eq!(vm.profile().unwrap().cache_hits, 0);
    assert_eq!(vm.profile().unwrap().cache_misses, 0);
}

#[test]
fn warm_restarts_converge_without_retracing_nested_trees() {
    // Miniature access-nsieve: the middle loop nest-calls the inner sieve
    // tree (§4.1). Warm restarts keep learning (exits that never got hot
    // under the cold ramp can become hot with native coverage from
    // iteration 0), but the learning must *converge*: a run must
    // eventually record nothing, still enter traces, and execute no more
    // non-native bytecodes than the cold ramp did. The historic failure
    // mode this pins down: a warm run stitching the inner tree at the
    // exit its nested-call sites guard on, which makes every outer caller
    // side-exit, trips the §3.3 short-loop disable, and re-records one
    // sibling per restart forever.
    let src = "
        function nsieve(m, isPrime) {
            var count = 0;
            for (var i = 2; i <= m; i++) isPrime[i] = true;
            for (var i = 2; i <= m; i++) {
                if (isPrime[i]) {
                    for (var k = i + i; k <= m; k += i) isPrime[k] = false;
                    count++;
                }
            }
            return count;
        }
        var total = 0;
        for (var s = 1; s <= 3; s++) {
            var isPrime = [];
            total += nsieve(400 * s, isPrime);
        }
        total";
    let cache = CacheFile::new("converge_nsieve");

    let mut cold = vm_with_cache(&cache.0);
    let expected = eval_num(&mut cold, src);
    assert_eq!(cold.last_cache_error(), None, "cold cache error");
    let cold_stats = cold.profile().unwrap().clone();
    let cold_nonnative = cold_stats.bytecodes_interp + cold_stats.bytecodes_recorded;
    assert!(cold.monitor().unwrap().cache.len() > 0, "cold run compiled trees");

    let mut quiesced = false;
    for run in 0..8 {
        let mut warm = vm_with_cache(&cache.0);
        assert_eq!(eval_num(&mut warm, src), expected, "run {run}: result");
        assert_eq!(warm.last_cache_error(), None, "run {run}: cache error");
        let s = warm.profile().unwrap();
        assert_eq!(s.cache_hits, 1, "run {run}: loaded the cache");
        if s.traces_completed == 0 && s.traces_aborted == 0 {
            assert!(s.trace_enters > 0, "quiescent run still enters traces");
            let warm_nonnative = s.bytecodes_interp + s.bytecodes_recorded;
            assert!(
                warm_nonnative <= cold_nonnative,
                "converged warm start must not exceed the cold ramp: \
                 warm {warm_nonnative} vs cold {cold_nonnative}"
            );
            quiesced = true;
            break;
        }
    }
    assert!(quiesced, "cache converged within 8 warm restarts");
}
