//! Integration coverage for the native x86-64 tier (`tm-nanojit::x64`)
//! behind `JitOptions::native_backend`: tier selection and fallback
//! accounting, differential identity with the decoded executor, graceful
//! degradation on targets without the backend, and invalidation when a
//! tree grows a branch fragment. The instruction-level differential
//! tests live in `crates/nanojit/src/x64.rs`; these drive the tier
//! through whole programs, the way the monitor uses it.

use tracemonkey::{Engine, JitOptions, Vm};

/// Runs `src` under the tracing JIT with `native_backend` as given and
/// returns the display string plus the profile counters.
fn run_with(
    src: &str,
    native: bool,
) -> (String, tracemonkey::jit::profiler::ProfileStats) {
    let mut opts = JitOptions::default();
    opts.native_backend = native;
    opts.profile = true;
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    let v = vm.eval(src).expect("program runs");
    let shown = tracemonkey::runtime::ops::to_display(&mut vm.realm, v);
    (shown, vm.profile().expect("tracing engine profiles").clone())
}

const INT_LOOP: &str = "var s = 0; for (var i = 0; i < 4000; i++) s = (s + (i ^ 3)) | 0; s";

const OBJ_LOOP: &str = "\
    var o = { a: 0, b: 1 };\n\
    for (var i = 0; i < 400; i++) { o.a = (o.a + o.b + i) | 0; }\n\
    o.a";

#[test]
fn supported_tree_runs_native_and_counters_balance() {
    if !tracemonkey::nanojit::native_supported() {
        return; // covered by native_backend_degrades_without_error
    }
    let (shown, stats) = run_with(INT_LOOP, true);
    let (decoded_shown, _) = run_with(INT_LOOP, false);
    assert_eq!(shown, decoded_shown);
    assert!(stats.native_fragments >= 1, "the int loop's tree must emit: {stats:?}");
    assert!(stats.native_exits >= 1, "the int loop must run natively: {stats:?}");
    assert_eq!(
        stats.native_exits + stats.native_fallbacks,
        stats.trace_enters,
        "every trace entry is exactly one native exit or one fallback: {stats:?}"
    );
}

#[test]
fn shape_guarded_trees_run_native() {
    if !tracemonkey::nanojit::native_supported() {
        return;
    }
    // Property access traces to GuardShape/LoadSlot/StoreSlot. Since the
    // full-coverage tier these emit natively: the tree runs through the
    // x86-64 buffer (majority of entries; the emission-countdown entries
    // before the buffer exists still fall back) and agrees with the
    // decoded executor.
    let (shown, stats) = run_with(OBJ_LOOP, true);
    let (decoded_shown, _) = run_with(OBJ_LOOP, false);
    assert_eq!(shown, decoded_shown);
    assert!(stats.trace_enters >= 1, "the loop must trace at all: {stats:?}");
    assert!(stats.native_fragments >= 1, "the shape-guarded tree must emit: {stats:?}");
    assert!(
        stats.native_exits > stats.native_fallbacks,
        "object traces run majority-native now: {stats:?}"
    );
    assert_eq!(stats.native_exits + stats.native_fallbacks, stats.trace_enters);
}

/// With `background_compile` on and a pool attached, native emission runs
/// on the pool's worker threads and never on the request thread — pinned
/// by the two emission counters. The result must still agree with both
/// the sync-emission run and the decoded executor.
#[test]
fn native_emission_runs_off_thread_with_pool() {
    if !tracemonkey::nanojit::native_supported() {
        return;
    }
    // The hot loop sits in a function called many times (nesting off, as
    // in `branch_install_invalidates_and_reemits`) so the monitor keeps
    // entering the tree — each entry polls the emission ticket, and once
    // it resolves the remaining entries run native.
    let int_calls = "\
        function f(n) { var s = 0; for (var i = 0; i < n; i++) s = (s + (i ^ 3)) | 0; return s; }\n\
        var t = 0;\n\
        for (var j = 0; j < 80; j++) { t = (t + f(200)) | 0; }\n\
        t";
    let obj_calls = "\
        function g(n) {\n\
            var o = { a: 0, b: 1 };\n\
            for (var i = 0; i < n; i++) { o.a = (o.a + o.b + i) | 0; }\n\
            return o.a;\n\
        }\n\
        var t = 0;\n\
        for (var j = 0; j < 80; j++) { t = (t + g(200)) | 0; }\n\
        t";
    let run = |src: &str, background: bool| {
        let mut opts = JitOptions::default();
        opts.native_backend = true;
        opts.background_compile = background;
        opts.enable_nesting = false;
        opts.profile = true;
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        if background {
            vm.attach_pool(std::sync::Arc::new(tracemonkey::CompilerPool::new(2)));
        }
        let v = vm.eval(src).expect("program runs");
        let shown = tracemonkey::runtime::ops::to_display(&mut vm.realm, v);
        (shown, vm.profile().expect("tracing engine profiles").clone())
    };
    for src in [int_calls, obj_calls] {
        let (shown, stats) = run(src, true);
        let (sync_shown, sync_stats) = run(src, false);
        let (decoded_shown, _) = run_with(src, false);
        assert_eq!(shown, sync_shown);
        assert_eq!(shown, decoded_shown);
        assert!(
            stats.native_emissions_offthread >= 1,
            "emission must happen on the pool: {stats:?}"
        );
        assert_eq!(
            stats.native_emissions_sync, 0,
            "zero emissions on the request thread with a pool attached: {stats:?}"
        );
        assert!(
            sync_stats.native_emissions_sync >= 1 && sync_stats.native_emissions_offthread == 0,
            "without a pool the same program emits synchronously: {sync_stats:?}"
        );
        assert!(stats.native_exits >= 1, "the pool-emitted tree must run: {stats:?}");
        assert_eq!(stats.native_exits + stats.native_fallbacks, stats.trace_enters);
    }
}

#[test]
fn disabled_backend_never_emits_or_falls_back() {
    let (_, stats) = run_with(INT_LOOP, false);
    assert!(stats.trace_enters >= 1);
    assert_eq!(stats.native_fragments, 0);
    assert_eq!(stats.native_exits, 0);
    assert_eq!(stats.native_fallbacks, 0, "fallbacks only count when the tier is on");
}

/// `native_backend = true` on a target without the backend must degrade
/// to the decoded executor without error — every entry a fallback. On
/// x86-64 Linux the same program runs natively instead; either way the
/// program completes and the accounting balances, so this test is
/// target-generic (the acceptance criterion for non-x86-64 builds).
#[test]
fn native_backend_degrades_without_error() {
    let (shown, stats) = run_with(INT_LOOP, true);
    let (decoded_shown, decoded_stats) = run_with(INT_LOOP, false);
    assert_eq!(shown, decoded_shown);
    assert_eq!(stats.native_exits + stats.native_fallbacks, stats.trace_enters);
    if !tracemonkey::nanojit::native_supported() {
        assert_eq!(stats.native_fragments, 0);
        assert_eq!(stats.native_exits, 0);
        assert_eq!(stats.native_fallbacks, stats.trace_enters);
    }
    // The tier is invisible to the paper's Figure 11 accounting: both
    // executors report identical per-trace instruction counts.
    assert_eq!(stats.trace_enters, decoded_stats.trace_enters);
    assert_eq!(stats.native_insts, decoded_stats.native_insts);
    assert_eq!(stats.native_insts_fused, decoded_stats.native_insts_fused);
    assert_eq!(stats.bytecodes_native, decoded_stats.bytecodes_native);
    assert_eq!(stats.side_exits, decoded_stats.side_exits);
}

/// A branchy loop grows its tree by stitched branch fragments after the
/// trunk was already emitted natively: the monitor must invalidate,
/// run the tree decoded through the re-emission countdown, then re-emit
/// the whole extended tree (counted again in `native_fragments`), and
/// the result must still agree with the decoded executor. The loop sits
/// in a function called many times so entries keep coming after the
/// tree stops growing; nesting is disabled so the inner tree is the
/// only tree and the static fragment count is directly comparable.
#[test]
fn branch_install_invalidates_and_reemits() {
    if !tracemonkey::nanojit::native_supported() {
        return;
    }
    let src = "\
        function f(n) {\n\
            var s = 0;\n\
            for (var i = 0; i < n; i++) {\n\
                if ((i & 3) == 0) { s = (s + i) | 0; } else { s = (s - 1) | 0; }\n\
            }\n\
            return s;\n\
        }\n\
        var t = 0;\n\
        for (var j = 0; j < 60; j++) { t = (t + f(150)) | 0; }\n\
        t";
    let run = |native: bool| {
        let mut opts = JitOptions::default();
        opts.native_backend = native;
        opts.enable_nesting = false;
        opts.profile = true;
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        let v = vm.eval(src).expect("program runs");
        let shown = tracemonkey::runtime::ops::to_display(&mut vm.realm, v);
        (shown, vm.profile().expect("tracing engine profiles").clone())
    };
    let (shown, stats) = run(true);
    let (decoded_shown, _) = run(false);
    assert_eq!(shown, decoded_shown);
    assert!(stats.native_exits >= 1, "{stats:?}");
    assert!(
        stats.native_fragments > stats.fragments,
        "re-emission after branch install re-counts the whole tree \
         (native {} vs static {}): {stats:?}",
        stats.native_fragments,
        stats.fragments
    );
    assert_eq!(stats.native_exits + stats.native_fallbacks, stats.trace_enters);
}

/// The full checksuite-style differential: a mixed program with doubles,
/// comparisons, and nested loops agrees between tiers and between the
/// tiers and the interpreter.
#[test]
fn mixed_program_agrees_across_tiers_and_interpreter() {
    let src = "\
        var acc = 0.0;\n\
        for (var i = 0; i < 50; i++) {\n\
            var t = 0;\n\
            for (var j = 0; j < 40; j++) {\n\
                t = (t + ((i * j) & 255)) | 0;\n\
                if (t > 4000) { t = t - 4000; }\n\
            }\n\
            acc = acc + t * 0.5;\n\
        }\n\
        acc";
    let (native_shown, _) = run_with(src, true);
    let (decoded_shown, _) = run_with(src, false);
    let mut interp = Vm::new(Engine::Interp);
    let v = interp.eval(src).expect("interpreter runs");
    let interp_shown = tracemonkey::runtime::ops::to_display(&mut interp.realm, v);
    assert_eq!(native_shown, interp_shown);
    assert_eq!(decoded_shown, interp_shown);
}
