//! Recursion tracing tests: function-entry anchors close tail recursion
//! into loop traces and unroll downward recursion with a depth budget,
//! instead of aborting with `TooDeep`. Every shape is checked
//! differentially against the pure interpreter and must actually reach
//! compiled code (nonzero fused dispatched instructions).

use tracemonkey::jit::events::{AbortReason, TraceEvent};
use tracemonkey::{Engine, JitOptions, Vm};

fn traced_vm(src: &str) -> Vm {
    traced_vm_with(src, |_| {})
}

fn traced_vm_with(src: &str, tweak: impl FnOnce(&mut JitOptions)) -> Vm {
    let mut opts = JitOptions::default();
    opts.log_events = true;
    tweak(&mut opts);
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    vm.eval(src).expect("traced program runs");
    vm
}

fn interp_number(src: &str) -> Option<f64> {
    let mut vm = Vm::new(Engine::Interp);
    vm.eval_number(src).expect("interpreter runs")
}

/// Differential check plus the coverage assertion of this PR: the program
/// must agree with the interpreter *and* dispatch fused native code.
fn check_traced(src: &str) -> Vm {
    let mut vm = traced_vm(src);
    let traced = vm.eval_number(src).expect("second traced run");
    assert_eq!(traced, interp_number(src), "tracing disagrees on: {src}");
    let p = vm.profile().expect("profile");
    assert!(
        p.native_insts_fused > 0,
        "recursion must reach compiled code, got 0 fused dispatched insts for: {src}"
    );
    vm
}

#[test]
fn self_tail_call_closes_into_a_loop_trace() {
    let src = "function sum(n, acc) {
            if (n == 0) return acc;
            return sum(n - 1, acc + n);
        }
        sum(20000, 0)";
    let vm = check_traced(src);
    let m = vm.monitor().unwrap();
    // The tail call loops back to the entry anchor: the trace is a real
    // loop, so iterations run natively without growing call depth.
    let completed = m
        .events
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::RecordFinish { .. }))
        .count();
    assert!(completed >= 1, "the tail-recursive entry trace compiles");
    let p = vm.profile().unwrap();
    assert!(
        p.trace_enters >= 1,
        "the compiled entry tree is entered, got {}",
        p.trace_enters
    );
}

#[test]
fn tail_recursion_with_argument_rebinding_agrees_on_types() {
    // The loop-carried values change type (int → double) mid-recursion:
    // stability analysis must coerce or grow a sibling tree, never give a
    // wrong answer.
    check_traced(
        "function scale(n, x) {
            if (n == 0) return x;
            return scale(n - 1, x + 0.5);
        }
        scale(10000, 0)",
    );
}

#[test]
fn mutual_recursion_traces_via_unrolling() {
    // isEven/isOdd call each other; the entry anchor's unrolled trace
    // inlines the partner function and leaves through the depth budget.
    check_traced(
        "function isEven(n) { if (n == 0) return 1; return isOdd(n - 1); }
         function isOdd(n) { if (n == 0) return 0; return isEven(n - 1); }
         var s = 0;
         for (var i = 0; i < 60; i++) s += isEven(i + 40);
         s",
    );
}

#[test]
fn binary_tree_recursion_mixes_native_and_interpreted_frames() {
    // Downward (non-tail) recursion: depth-specialized unrolled traces
    // cover a window of frames; the side exit at the depth budget
    // re-enters the monitor at the deeper frame (no aborts required).
    let src = "function item(depth) {
            if (depth == 0) return 1;
            return item(depth - 1) + item(depth - 1) + 1;
        }
        var total = 0;
        for (var d = 4; d <= 12; d++) total += item(d);
        total % 1000000";
    let vm = check_traced(src);
    let p = vm.profile().unwrap();
    // Mixed execution: both engines contribute bytecodes.
    assert!(p.bytecodes_native > 0, "some frames run natively");
    assert!(p.bytecodes_interp > 0, "some frames run interpreted");
}

#[test]
fn hot_side_exits_off_a_recursive_trace_grow_branches() {
    // A recursive trace whose leaf test alternates between two data paths:
    // both sides go hot, so the tree must grow branch fragments off the
    // recursive trunk (two hot side exits).
    let src = "function walk(n, bias) {
            if (n < 2) return bias;
            if ((n & 1) == bias) return walk(n - 1, bias) + 1;
            return walk(n - 2, 1 - bias) + 2;
        }
        var s = 0;
        for (var i = 0; i < 40; i++) s += walk(120 + (i % 3), i & 1);
        s";
    let vm = check_traced(src);
    let m = vm.monitor().unwrap();
    let branches = m
        .events
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::RecordStartBranch { .. }))
        .count();
    assert!(
        branches >= 2,
        "two hot side exits must start branch recordings, got {branches}"
    );
}

#[test]
fn deep_recursion_under_tiny_inline_budget_still_compiles() {
    // With max_inline_depth=2 the old recorder aborted every recursive
    // call with TooDeep; entry anchors now leave through the depth budget
    // and re-enter at the deeper frame, so no TooDeep abort fires at all.
    // The driver is itself tail-recursive (no loop header anywhere): every
    // anchor in the program is a function entry.
    let src = "function fact(n) {
            if (n < 2) return 1;
            return n * fact(n - 1);
        }
        function drive(i, s) {
            if (i == 0) return s;
            return drive(i - 1, (s + fact(12)) % 1000003);
        }
        drive(200, 0)";
    let vm = traced_vm_with(src, |o| o.max_inline_depth = 2);
    let mut vm2 = Vm::new(Engine::Interp);
    let mut traced = Vm::with_options(Engine::Tracing, {
        let mut o = JitOptions::default();
        o.max_inline_depth = 2;
        o
    });
    assert_eq!(
        traced.eval_number(src).unwrap(),
        vm2.eval_number(src).unwrap(),
        "tiny inline budget must not change results"
    );
    let m = vm.monitor().unwrap();
    let too_deep = m
        .events
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::RecordAbort { reason: AbortReason::TooDeep }))
        .count();
    assert_eq!(too_deep, 0, "entry anchors leave at the depth budget instead of aborting");
    let p = vm.profile().unwrap();
    assert!(p.traces_completed >= 1, "recursive entry traces compile at depth budget 2");
    assert!(p.native_insts_fused > 0, "and execute natively");
}

#[test]
fn recursion_in_constructors_stays_correct() {
    // Construct frames are excluded from tail-call loop closure (the
    // `this` local doubles as the `new`-fixup value); make sure recursive
    // constructors still answer correctly whichever path records.
    check_traced(
        "function Node(depth) {
            this.depth = depth;
            if (depth > 0) this.child = new Node(depth - 1);
        }
        var s = 0;
        for (var i = 0; i < 50; i++) {
            var n = new Node(6);
            s += n.child.child.depth;
        }
        s",
    );
}
