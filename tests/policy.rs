//! Monitor policy tests: the oracle's per-site integer demotion (§3.2) and
//! the blacklist's backoff/patching thresholds (§3.3) observed through real
//! program runs, not just unit-level table manipulation.

use tracemonkey::bytecode::FuncId;
use tracemonkey::jit::events::TraceEvent;
use tracemonkey::{Engine, JitOptions, Vm};

fn traced_vm_with(src: &str, tweak: impl FnOnce(&mut JitOptions)) -> Vm {
    let mut opts = JitOptions::default();
    opts.log_events = true;
    tweak(&mut opts);
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    vm.eval(src).expect("program runs");
    vm
}

fn interp_result(src: &str) -> String {
    let mut vm = Vm::new(Engine::Interp);
    let v = vm.eval(src).expect("interpreter runs");
    tracemonkey::runtime::ops::to_display(&mut vm.realm, v)
}

fn traced_result(vm: &mut Vm, src: &str) -> String {
    let v = vm.eval(src).expect("traced program runs");
    tracemonkey::runtime::ops::to_display(&mut vm.realm, v)
}

/// `i * i` stays inside the tagged-int range (2^30) when recording starts
/// at i=32700, then overflows from i=32768 on — every later iteration
/// takes the `MulIChk` guard even though every loop variable keeps its
/// integer representation (`p` is reset to 0 before the loop edge, so the
/// tree keeps matching and re-entering). Per-*variable* demotion cannot
/// help here; only the arithmetic-*site* oracle can.
const OVERFLOW_SITE_SRC: &str = "var s = 0;
     for (var i = 32700; i < 33500; i = i + 1) {
         var p = i * i;
         if (p < 0) { s = (s + 1) | 0; }
         p = 0;
         s = (s + 1) | 0;
     }
     s";

#[test]
fn hot_overflow_guard_demotes_the_arith_site() {
    let vm = traced_vm_with(OVERFLOW_SITE_SRC, |_| {});
    let m = vm.monitor().unwrap();
    // The overflow exit went hot and the monitor told the oracle about the
    // arithmetic *site*.
    let demoted_sites: Vec<(FuncId, u32)> = (0..4)
        .flat_map(|f| (0..2000).map(move |pc| (FuncId(f), pc)))
        .filter(|&site| !m.oracle.may_speculate_int_site(site))
        .collect();
    assert!(
        !demoted_sites.is_empty(),
        "a repeatedly-overflowing MulIChk site must be demoted by the oracle"
    );
    // Demotion happens on the hot-exit extension path: the double-path
    // branch fragment must have been recorded off the overflow guard.
    let events = m.events.events();
    assert!(
        events.iter().any(|e| matches!(e, TraceEvent::RecordStartBranch { .. })),
        "the hot overflow exit triggers a branch recording"
    );
}

#[test]
fn site_demotion_does_not_change_results() {
    let mut vm = traced_vm_with(OVERFLOW_SITE_SRC, |_| {});
    // Same program again in the same VM: this run records with the site
    // already demoted (double path + truncation), and must agree with the
    // pure interpreter.
    assert_eq!(traced_result(&mut vm, OVERFLOW_SITE_SRC), interp_result(OVERFLOW_SITE_SRC));
}

/// A loop the recorder always aborts on (ToString of an object is outside
/// the traceable subset), used to probe blacklist thresholds.
const UNTRACEABLE_SRC: &str = "var s = 0;
     var o = {x: 1};
     var t = '';
     for (var i = 0; i < 3000; i++) {
         t = '' + o;
         s += 1;
     }
     s";

fn abort_and_blacklist_counts(vm: &Vm) -> (usize, usize) {
    let m = vm.monitor().unwrap();
    let events = m.events.events();
    let aborts = events.iter().filter(|e| matches!(e, TraceEvent::RecordAbort { .. })).count();
    let blacklists =
        events.iter().filter(|e| matches!(e, TraceEvent::Blacklist { .. })).count();
    (aborts, blacklists)
}

#[test]
fn blacklist_attempt_budget_follows_max_failures() {
    let one = traced_vm_with(UNTRACEABLE_SRC, |o| o.blacklist.max_failures = 1);
    let (aborts_one, blacklists_one) = abort_and_blacklist_counts(&one);
    assert_eq!(aborts_one, 1, "max_failures=1 allows exactly one recording attempt");
    assert!(blacklists_one >= 1, "the loop header still gets patched");

    let three = traced_vm_with(UNTRACEABLE_SRC, |o| o.blacklist.max_failures = 3);
    let (aborts_three, blacklists_three) = abort_and_blacklist_counts(&three);
    assert_eq!(aborts_three, 3, "max_failures=3 allows exactly three attempts");
    assert!(blacklists_three >= 1);
}

#[test]
fn backoff_spaces_attempts_but_does_not_change_the_budget() {
    // A tiny backoff burns through the attempt budget within the loop's
    // 3000 iterations just like the default 32-pass backoff does; the
    // total attempt count is set by max_failures alone.
    let vm = traced_vm_with(UNTRACEABLE_SRC, |o| {
        o.blacklist.max_failures = 2;
        o.blacklist.backoff = 2;
    });
    let (aborts, blacklists) = abort_and_blacklist_counts(&vm);
    assert_eq!(aborts, 2);
    assert!(blacklists >= 1);
}

#[test]
fn disabled_blacklist_keeps_reattempting() {
    let vm = traced_vm_with(UNTRACEABLE_SRC, |o| o.blacklist.enabled = false);
    let (aborts, blacklists) = abort_and_blacklist_counts(&vm);
    assert!(
        aborts > 4,
        "with blacklisting off the monitor keeps re-recording the hot loop, got {aborts} aborts"
    );
    assert_eq!(blacklists, 0);
    // Ablation changes policy, never observable results.
    let m = vm.monitor().unwrap();
    assert_eq!(m.blacklist.blacklisted_count(), 0);
}

#[test]
fn too_deep_is_demote_only_in_the_abort_taxonomy() {
    // §3.3/§4.2: depth-budget aborts are provisional (like nesting
    // not-ready) — the site may become traceable once inner/entry trees
    // exist, so forgiveness can undo the failure count. Hard aborts are
    // not forgivable.
    use tracemonkey::jit::events::AbortReason;
    use tracemonkey::jit::monitor::abort_is_provisional;
    assert!(abort_is_provisional(&AbortReason::TooDeep));
    assert!(abort_is_provisional(&AbortReason::InnerTreeNotReady));
    assert!(abort_is_provisional(&AbortReason::InnerTreeCallFailed));
    assert!(!abort_is_provisional(&AbortReason::Unsupported));
    assert!(!abort_is_provisional(&AbortReason::NotCallable));
    assert!(!abort_is_provisional(&AbortReason::GuestError));
}

#[test]
fn non_callable_callee_aborts_with_not_callable_not_guest_error() {
    // The callee array turns non-callable exactly when the loop goes hot:
    // recording stops with the dedicated NotCallable reason (the guest
    // error — the TypeError the interpreter then raises — is a separate
    // concept and must not be conflated).
    use tracemonkey::jit::events::AbortReason;
    let src = "function f(x) { return x + 1; }
         var fs = [f, 5, 5, 5, 5, 5, 5, 5];
         var s = 0;
         for (var i = 0; i < 8; i++) s += fs[i](i);
         s";
    let mut opts = JitOptions::default();
    opts.log_events = true;
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    let err = vm.eval(src);
    assert!(err.is_err(), "calling a number raises a guest TypeError");
    let m = vm.monitor().unwrap();
    let events = m.events.events();
    let not_callable = events
        .iter()
        .filter(|e| {
            matches!(e, TraceEvent::RecordAbort { reason: AbortReason::NotCallable })
        })
        .count();
    let guest_error = events
        .iter()
        .filter(|e| {
            matches!(e, TraceEvent::RecordAbort { reason: AbortReason::GuestError })
        })
        .count();
    assert_eq!(not_callable, 1, "exactly one NotCallable recording abort");
    assert_eq!(guest_error, 0, "no recording abort is misfiled as GuestError");
}
