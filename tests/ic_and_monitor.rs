//! Behavior tests for the de-hashed hot paths (PR 4): per-site property
//! inline caches in the interpreter, and the dense per-loop monitor slots
//! that replace hash lookups on every loop edge.

use tracemonkey::jit::events::TraceEvent;
use tracemonkey::{Engine, JitOptions, Vm};

fn traced_vm(src: &str) -> Vm {
    let mut opts = JitOptions::default();
    opts.log_events = true;
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    vm.eval(src).expect("program runs");
    vm
}

#[test]
fn interp_property_loop_is_ic_resident() {
    // Steady-state property traffic in the interpreter is served by the
    // per-site caches: misses are a warm-up constant, hits scale with the
    // iteration count.
    let mut vm = Vm::new(Engine::Interp);
    let v = vm
        .eval_number(
            "var p = {x: 3, y: 4};
             var s = 0;
             for (var i = 0; i < 2000; i++) { s += p.x * p.y; p.x = p.x; }
             s",
        )
        .unwrap();
    assert_eq!(v, Some(24000.0));
    let stats = vm.interp().unwrap().ic_stats;
    assert!(stats.get_hits >= 3900, "get hits: {stats:?}");
    assert!(stats.set_hits >= 1900, "set hits: {stats:?}");
    assert!(stats.misses() <= 16, "steady state must not miss: {stats:?}");
}

#[test]
fn interp_ic_correct_across_midloop_transition() {
    // A shape transition mid-loop invalidates the warmed site; the
    // program must stay correct and the site must re-warm against the
    // new shape.
    let mut vm = Vm::new(Engine::Interp);
    let v = vm
        .eval_number(
            "var o = {x: 1};
             var s = 0;
             for (var i = 0; i < 100; i++) {
                 s += o.x;
                 if (i == 50) o.y = 99;
             }
             s",
        )
        .unwrap();
    assert_eq!(v, Some(100.0));
    let stats = vm.interp().unwrap().ic_stats;
    assert!(stats.get_misses >= 2, "fill + post-transition refill: {stats:?}");
    assert!(stats.get_hits >= 90, "both shapes serve from the cache: {stats:?}");
}

#[test]
fn monitor_slow_path_is_a_warmup_constant() {
    // The dense monitor slots make loop-edge handling O(1) with no hash
    // lookups: the slow path (recording/blacklist machinery) runs a fixed
    // number of times during warm-up, after which every edge is resolved
    // by the slot. Scaling the iteration count 10x must not change the
    // slow-path count at all — zero slow-path lookups in steady state.
    let small = traced_vm("var s = 0; for (var i = 0; i < 2000; i++) s += i; s");
    let large = traced_vm("var s = 0; for (var i = 0; i < 20000; i++) s += i; s");
    let p_small = small.profile().unwrap();
    let p_large = large.profile().unwrap();
    assert!(p_small.monitor_slot_slow >= 1, "recording consumed at least one edge");
    assert_eq!(
        p_small.monitor_slot_slow, p_large.monitor_slot_slow,
        "slow path must not scale with iterations: {} vs {}",
        p_small.monitor_slot_slow, p_large.monitor_slot_slow
    );
    assert!(p_small.monitor_slot_fast >= 1, "slot fast path used");
    assert!(
        p_large.monitor_slot_slow < 20,
        "slow path bounded by warm-up: {}",
        p_large.monitor_slot_slow
    );
}

#[test]
fn tracing_property_loop_reports_ic_activity() {
    // The monitor rolls the interpreter's IC counters into ProfileStats.
    let vm = traced_vm(
        "var p = {x: 2, y: 5};
         var s = 0;
         for (var i = 0; i < 500; i++) s += p.x + p.y;
         s",
    );
    let p = vm.profile().unwrap();
    assert!(
        p.ic.get_hits + p.ic.get_misses >= 1,
        "interpreted warm-up iterations consult the site caches: {:?}",
        p.ic
    );
}

#[test]
fn blacklisted_header_bypasses_the_monitor_slot() {
    // Once a header is patched to Nop (§3.3), the interpreter never calls
    // the monitor for that loop again: total slot activity stays a small
    // constant even though the loop runs thousands of iterations.
    let vm = traced_vm(
        "var s = '';
         var o = {x: 1};
         for (var i = 0; i < 3000; i++) {
             s = '' + o; // ToString(object): untraceable
         }
         s",
    );
    let m = vm.monitor().unwrap();
    let blacklists =
        m.events.events().iter().filter(|e| matches!(e, TraceEvent::Blacklist { .. })).count();
    assert!(blacklists >= 1, "the loop gets blacklisted");
    let p = vm.profile().unwrap();
    let touched = p.monitor_slot_fast + p.monitor_slot_slow;
    assert!(
        touched < 100,
        "patched header must silence the slot, saw {touched} slot touches for 3000 iterations"
    );
}
