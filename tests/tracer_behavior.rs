//! Tests of the tracer's observable behavior against the paper's
//! descriptions: the §2 narrative event sequence, trace-tree topology
//! (Figures 5/7/8), type-stability linking (Figure 6), blacklisting
//! (§3.3), nested trees (§4), and the preemption guard (§6.4).

use tracemonkey::jit::events::TraceEvent;
use tracemonkey::jit::exit::ExitKind;
use tracemonkey::{Engine, JitOptions, Vm};

fn traced_vm(src: &str) -> Vm {
    let mut opts = JitOptions::default();
    opts.log_events = true;
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    vm.eval(src).expect("program runs");
    vm
}

#[test]
fn sieve_narrative_matches_section_2() {
    // The paper's §2 walkthrough: the inner loop becomes hot first and is
    // recorded as its own tree (T45); the outer loop is recorded next and
    // *calls* the inner tree (T16); a hot side exit of the outer tree
    // grows a branch trace (T23,1).
    let vm = traced_vm(
        "var primes = [];
         for (var i = 0; i < 500; i++) primes[i] = true;
         for (var i = 2; i < 500; ++i) {
             if (!primes[i]) continue;
             for (var k = i + i; k < 500; k += i)
                 primes[k] = false;
         }
         primes.length",
    );
    let m = vm.monitor().unwrap();
    let events = m.events.events();

    // Find the recording of the inner k-loop and the outer i-loop.
    let roots: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RecordStartRoot { pc, .. } => Some(*pc),
            _ => None,
        })
        .collect();
    assert!(roots.len() >= 2, "both inner and outer loops are recorded: {roots:?}");

    // A nested call was recorded while tracing the outer loop (§4.1).
    assert!(
        events.iter().any(|e| matches!(e, TraceEvent::NestedCall { .. })),
        "the outer loop calls the inner tree"
    );
    // The `continue` path becomes hot and is stitched as a branch trace.
    assert!(
        events.iter().any(|e| matches!(e, TraceEvent::Stitch { .. })),
        "a hot side exit grows a stitched branch trace"
    );
    // After warmup, the program runs almost entirely natively.
    let p = vm.profile().unwrap();
    assert!(
        p.native_bytecode_fraction() > 0.9,
        "sieve should run >90% natively, got {:.1}%",
        100.0 * p.native_bytecode_fraction()
    );
}

#[test]
fn trace_tree_topology_trunk_and_branch() {
    // Figure 5: a tree with a trunk and an attached branch trace, both
    // looping back to the tree anchor.
    let vm = traced_vm(
        "var a = 0, b = 0;
         for (var i = 0; i < 2000; i++) {
             if (i % 4 == 0) a++; else b++;
         }
         a * 10000 + b",
    );
    let m = vm.monitor().unwrap();
    let tree = m.cache.iter().max_by_key(|t| t.fragments.len()).expect("a tree");
    assert!(
        tree.fragments.len() >= 2,
        "the minority branch becomes a branch fragment (got {})",
        tree.fragments.len()
    );
    // The branch is reachable by stitching from some trunk exit.
    let stitched = tree.fragments.iter().any(|f| {
        f.exit_targets
            .iter()
            .any(|t| matches!(t, tracemonkey::nanojit::ExitTarget::Fragment(_)))
    });
    assert!(stitched, "branch fragments are stitched to parent exits");
}

#[test]
fn nested_trees_outer_calls_inner() {
    // Figure 7/8: the outer tree calls the inner tree instead of
    // duplicating it.
    let vm = traced_vm(
        "var s = 0;
         for (var i = 0; i < 120; i++)
             for (var j = 0; j < 50; j++)
                 s += i ^ j;
         s",
    );
    let m = vm.monitor().unwrap();
    let with_sites: Vec<_> = m.cache.iter().filter(|t| !t.nested_sites.is_empty()).collect();
    assert!(!with_sites.is_empty(), "some tree has a nested call site");
    let outer = with_sites[0];
    let inner = outer.nested_sites[0].inner;
    assert_ne!(outer.id, inner, "outer calls a different tree");
    // The inner tree ran many iterations through nested calls.
    assert!(m.cache.tree(inner).stats.iterations > 1000);
}

#[test]
fn type_unstable_loops_reach_equilibrium() {
    // Figure 6: a loop whose variable starts undefined and becomes a
    // number: sibling trees form and connect rather than thrashing.
    let vm = traced_vm(
        "var t; var s = 0;
         for (var i = 0; i < 3000; i++) { t = i * 0.5; s += t; }
         s",
    );
    let m = vm.monitor().unwrap();
    let p = vm.profile().unwrap();
    assert!(
        p.native_bytecode_fraction() > 0.8,
        "type-unstable warmup still converges to native execution ({:.1}%)",
        100.0 * p.native_bytecode_fraction()
    );
    // At least one tree anchors at the loop with a Double entry for t.
    assert!(m.cache.len() >= 1);
}

#[test]
fn oracle_demotes_after_unstable_recording() {
    // §3.2: an int→double widening at the loop edge marks the variable in
    // the oracle; the re-recorded trace is stable.
    let vm = traced_vm(
        "var x = 0;
         for (var i = 0; i < 4000; i++) {
             x = x + 0.25; // becomes non-integer immediately after start
         }
         x",
    );
    let m = vm.monitor().unwrap();
    assert!(
        !m.oracle.is_empty() || m.cache.iter().any(|t| !t.unstable),
        "the oracle learns or a stable tree forms"
    );
    let p = vm.profile().unwrap();
    assert!(p.native_bytecode_fraction() > 0.9);
}

#[test]
fn blacklisting_patches_untraceable_loops() {
    // §3.3: a loop whose body always aborts recording (object→string
    // coercion is outside the recorder's subset) gets blacklisted, and the
    // loop-header op is patched so the monitor is never called again.
    let vm = traced_vm(
        "var s = 0;
         var o = {x: 1};
         var t = '';
         for (var i = 0; i < 3000; i++) {
             t = '' + o; // ToString(object): untraceable
             s += 1;
         }
         s",
    );
    let m = vm.monitor().unwrap();
    let events = m.events.events();
    let aborts = events.iter().filter(|e| matches!(e, TraceEvent::RecordAbort { .. })).count();
    let blacklists =
        events.iter().filter(|e| matches!(e, TraceEvent::Blacklist { .. })).count();
    assert!(aborts >= 1, "recording must have been attempted and aborted");
    assert!(blacklists >= 1, "the loop gets blacklisted after repeated failures");
    // Crucially, the failures are bounded (no unbounded re-recording).
    assert!(aborts <= 4, "aborts are bounded by the blacklist policy, got {aborts}");
}

#[test]
fn preemption_interrupts_native_loops() {
    // §6.4: the preemption flag is honored at trace loop edges.
    let mut opts = JitOptions::default();
    opts.log_events = true;
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    // Prime a long-running loop, interrupting from a native callback would
    // need threads; instead set the flag before a second eval that loops
    // forever — the flag must stop both interpreted and traced loops.
    vm.realm.interrupt = true;
    let err = vm.eval("var i = 0; while (true) i++;").unwrap_err();
    assert!(matches!(
        err,
        tracemonkey::VmError::Runtime(tracemonkey::RuntimeError::Interrupted)
    ));
}

#[test]
fn side_exit_kinds_cover_the_design() {
    let vm = traced_vm(
        "var s = 0;
         for (var i = 0; i < 900; i++) {
             if (i % 5 == 0) s += 2; else s -= 1;
             if (i == 777) break;
         }
         s",
    );
    let m = vm.monitor().unwrap();
    let mut saw_branch = false;
    let mut saw_loop_edge = false;
    for tree in m.cache.iter() {
        for exits in &tree.exits {
            for e in exits {
                match e.kind {
                    ExitKind::Branch => saw_branch = true,
                    ExitKind::LoopEdge => saw_loop_edge = true,
                    _ => {}
                }
            }
        }
    }
    assert!(saw_branch && saw_loop_edge);
}

#[test]
fn completion_value_survives_tracing() {
    let mut vm = Vm::new(Engine::Tracing);
    let v = vm.eval("var s = 0; for (var i = 0; i < 1000; i++) s += 2; s * 2").unwrap();
    assert_eq!(vm.realm.heap.number_value(v), Some(4000.0));
}

#[test]
fn globals_persist_across_evals() {
    let mut vm = Vm::new(Engine::Tracing);
    vm.eval("var acc = 0; for (var i = 0; i < 500; i++) acc += i;").unwrap();
    let v = vm.eval("acc * 2").unwrap();
    assert_eq!(vm.realm.heap.number_value(v), Some(124750.0 * 2.0));
}

#[test]
fn step_budget_is_enforced_under_tracing() {
    let mut vm = Vm::new(Engine::Tracing);
    vm.step_budget = 200_000;
    let err = vm.eval("var i = 0; while (true) i++;").unwrap_err();
    assert!(matches!(
        err,
        tracemonkey::VmError::Runtime(tracemonkey::RuntimeError::StepBudgetExhausted)
    ));
}
