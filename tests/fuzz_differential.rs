//! A JSFUNFUZZ-style fuzzer (§6.6): generates random loop-heavy programs
//! and differentially tests every engine against the interpreter. "We
//! modified JSFUNFUZZ to generate loops, and also to test more heavily
//! certain constructs we suspected would reveal flaws" — here: nested
//! loops, type-unstable variables, integer overflow boundaries, arrays,
//! function calls (including bounded recursion), object property access,
//! string concatenation, and branchy control flow.
//!
//! On a divergence the harness runs the `tm-verifier` delta-debugging
//! reducer over the failing program and panics with the minimized source
//! plus a ready-to-paste regression test.

use tm_support::TmRng;
use tracemonkey::{Engine, Vm};

struct Gen {
    rng: TmRng,
    vars: Vec<String>,
    arrays: Vec<String>,
    /// Generated top-level functions: `(name, is_recursive)`.
    funcs: Vec<(String, bool)>,
    objs: Vec<String>,
    strs: Vec<String>,
    loop_depth: u32,
    next_id: u32,
    out: String,
    indent: usize,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: TmRng::seed_from_u64(seed),
            vars: Vec::new(),
            arrays: Vec::new(),
            funcs: Vec::new(),
            objs: Vec::new(),
            strs: Vec::new(),
            loop_depth: 0,
            next_id: 0,
            out: String::new(),
            indent: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// A random arithmetic expression over existing variables.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return match self.rng.gen_range(0..6) {
                0 => format!("{}", self.rng.gen_range(-100..100)),
                1 => format!("{}", self.rng.gen_range(-3.0..3.0)),
                // Values near the 31-bit boxing boundary stress the
                // overflow guards.
                2 => format!("{}", 1_073_741_823i64 - i64::from(self.rng.gen_range(0..3))),
                _ => {
                    if self.vars.is_empty() {
                        "1".to_owned()
                    } else {
                        let i = self.rng.gen_range(0..self.vars.len());
                        self.vars[i].clone()
                    }
                }
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        let op = ["+", "-", "*", "&", "|", "^", "%", ">>", "<<", ">>>"]
            [self.rng.gen_range(0..10usize)];
        if op == "%" {
            // Avoid NaN spam (but keep some).
            format!("(({a}) % ((({b}) & 7) + 2))")
        } else {
            format!("(({a}) {op} ({b}))")
        }
    }

    fn condition(&mut self) -> String {
        let a = self.expr(1);
        let b = self.expr(1);
        let op = ["<", "<=", ">", ">=", "==", "!=", "===", "!=="][self.rng.gen_range(0..8usize)];
        format!("({a}) {op} ({b})")
    }

    /// Emits a top-level two-parameter arithmetic helper (the frontend
    /// only supports top-level function declarations).
    fn function_decl(&mut self) {
        let name = self.fresh("f");
        let p1 = self.fresh("p");
        let p2 = self.fresh("p");
        // Inside the body only the parameters are in scope.
        let saved = std::mem::replace(&mut self.vars, vec![p1.clone(), p2.clone()]);
        self.line(&format!("function {name}({p1}, {p2}) {{"));
        self.indent += 1;
        let t = self.fresh("t");
        let e = self.expr(2);
        self.line(&format!("var {t} = ({e}) | 0;"));
        self.vars.push(t.clone());
        let c = self.condition();
        let e2 = self.expr(1);
        self.line(&format!("if ({c}) {{ return ({e2}) | 0; }}"));
        let e3 = self.expr(1);
        self.line(&format!("return ({t} + ({e3})) | 0;"));
        self.indent -= 1;
        self.line("}");
        self.vars = saved;
        self.funcs.push((name, false));
    }

    /// Emits a self-recursive helper; callers bound the depth argument.
    fn recursive_decl(&mut self) {
        let name = self.fresh("rec");
        let op = ["+", "-", "^"][self.rng.gen_range(0..3usize)];
        self.line(&format!("function {name}(n, a) {{"));
        self.line(&format!("    if (n < 1) {{ return a | 0; }}"));
        self.line(&format!("    return {name}(n - 1, (a {op} n) | 0) | 0;"));
        self.line("}");
        self.funcs.push((name, true));
    }

    /// A call of one of the generated functions; recursive helpers get a
    /// masked (bounded) depth argument.
    fn call_expr(&mut self) -> Option<String> {
        if self.funcs.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.funcs.len());
        let (name, recursive) = self.funcs[i].clone();
        let a = self.expr(1);
        let b = self.expr(1);
        Some(if recursive {
            format!("{name}((({a}) & 15), ({b}) | 0)")
        } else {
            format!("{name}(({a}) | 0, ({b}) | 0)")
        })
    }

    fn statement(&mut self, budget: &mut u32) {
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        match self.rng.gen_range(0..14) {
            0 | 1 => {
                // New variable.
                let v = self.fresh("v");
                let e = self.expr(2);
                self.line(&format!("var {v} = {e};"));
                self.vars.push(v);
            }
            2 | 3 => {
                // Assignment / compound assignment.
                if let Some(i) = self.pick_var() {
                    let v = self.vars[i].clone();
                    let e = self.expr(2);
                    let op = ["=", "+=", "-=", "*=", "&=", "^=", "|="]
                        [self.rng.gen_range(0..7usize)];
                    self.line(&format!("{v} {op} {e};"));
                }
            }
            4 => {
                // Array write (creates the array on first use).
                let a = if self.arrays.is_empty() || self.rng.gen_bool(0.3) {
                    let a = self.fresh("arr");
                    self.line(&format!("var {a} = [];"));
                    self.arrays.push(a.clone());
                    a
                } else {
                    let i = self.rng.gen_range(0..self.arrays.len());
                    self.arrays[i].clone()
                };
                let idx = self.rng.gen_range(0..16);
                let e = self.expr(2);
                self.line(&format!("{a}[{idx}] = {e};"));
            }
            5 => {
                // Array read into a var.
                if !self.arrays.is_empty() {
                    let ai = self.rng.gen_range(0..self.arrays.len());
                    let a = self.arrays[ai].clone();
                    let v = self.fresh("v");
                    let idx = self.rng.gen_range(0..20);
                    self.line(&format!("var {v} = {a}[{idx}] | 0;"));
                    self.vars.push(v);
                }
            }
            6 | 7 => {
                // If / else.
                let c = self.condition();
                self.line(&format!("if ({c}) {{"));
                self.indent += 1;
                self.statement(budget);
                self.indent -= 1;
                if self.rng.gen_bool(0.5) {
                    self.line("} else {");
                    self.indent += 1;
                    self.statement(budget);
                    self.indent -= 1;
                }
                self.line("}");
            }
            8 => {
                // Function call folded into a fresh variable.
                if let Some(call) = self.call_expr() {
                    let v = self.fresh("v");
                    self.line(&format!("var {v} = ({call}) | 0;"));
                    self.vars.push(v);
                }
            }
            9 => {
                // Object property write / read / bump (objects are
                // declared in the preamble, so they are always defined).
                if !self.objs.is_empty() {
                    let oi = self.rng.gen_range(0..self.objs.len());
                    let o = self.objs[oi].clone();
                    let field = ["a", "b"][self.rng.gen_range(0..2usize)];
                    match self.rng.gen_range(0..3) {
                        0 => {
                            let e = self.expr(2);
                            self.line(&format!("{o}.{field} = ({e}) | 0;"));
                        }
                        1 => {
                            let v = self.fresh("v");
                            self.line(&format!("var {v} = {o}.{field} | 0;"));
                            self.vars.push(v);
                        }
                        _ => {
                            self.line(&format!("{o}.{field} = ({o}.{field} + 1) | 0;"));
                        }
                    }
                }
            }
            10 => {
                // String concatenation (growth-bounded) or length read.
                if !self.strs.is_empty() {
                    let si = self.rng.gen_range(0..self.strs.len());
                    let s = self.strs[si].clone();
                    if self.rng.gen_bool(0.6) {
                        let piece = ["x", "yz", "q"][self.rng.gen_range(0..3usize)];
                        self.line(&format!(
                            "if ({s}.length < 80) {{ {s} = {s} + \"{piece}\"; }}"
                        ));
                    } else {
                        let v = self.fresh("v");
                        self.line(&format!("var {v} = ({s} + \"z\").length | 0;"));
                        self.vars.push(v);
                    }
                }
            }
            _ => {
                // Loop (bounded, nesting-limited).
                if self.loop_depth < 3 {
                    let i = self.fresh("i");
                    let n = self.rng.gen_range(3..60);
                    self.line(&format!("for (var {i} = 0; {i} < {n}; {i}++) {{"));
                    self.vars.push(i);
                    self.indent += 1;
                    self.loop_depth += 1;
                    let mut inner = self.rng.gen_range(1..4u32).min(*budget);
                    while inner > 0 {
                        self.statement(budget);
                        inner -= 1;
                    }
                    self.loop_depth -= 1;
                    self.indent -= 1;
                    self.line("}");
                    self.vars.pop();
                }
            }
        }
    }

    fn pick_var(&mut self) -> Option<usize> {
        if self.vars.is_empty() {
            None
        } else {
            Some(self.rng.gen_range(0..self.vars.len()))
        }
    }

    fn program(mut self) -> String {
        // Top-level helper functions, including (sometimes) a bounded
        // recursive one.
        for _ in 0..self.rng.gen_range(0..3u32) {
            self.function_decl();
        }
        if self.rng.gen_bool(0.5) {
            self.recursive_decl();
        }
        // Seed variables of mixed types (type-instability fodder).
        self.line("var acc = 0;");
        self.vars.push("acc".into());
        self.line("var dbl = 0.5;");
        self.vars.push("dbl".into());
        // Objects and strings are declared up front so statements can
        // mutate them without ever touching an undefined binding.
        for _ in 0..self.rng.gen_range(0..3u32) {
            let o = self.fresh("obj");
            let a = self.rng.gen_range(-50..50);
            let b = self.rng.gen_range(-50..50);
            self.line(&format!("var {o} = {{ a: {a}, b: {b} }};"));
            self.objs.push(o);
        }
        for _ in 0..self.rng.gen_range(0..2u32) {
            let s = self.fresh("s");
            self.line(&format!("var {s} = \"ab\";"));
            self.strs.push(s);
        }
        // A hot outer loop so tracing definitely kicks in.
        let outer = self.rng.gen_range(20..120);
        self.line(&format!("for (var main = 0; main < {outer}; main++) {{"));
        self.vars.push("main".into());
        self.indent += 1;
        self.loop_depth += 1;
        let mut budget = self.rng.gen_range(4..14u32);
        while budget > 0 {
            self.statement(&mut budget);
        }
        // Fold locals into the accumulator so everything is observable:
        // plain variables by value, objects by field, strings by length.
        let mut terms: Vec<String> =
            self.vars.iter().map(|v| format!("({v} | 0)")).collect();
        terms.extend(self.objs.iter().map(|o| format!("({o}.a | 0) + ({o}.b | 0)")));
        terms.extend(self.strs.iter().map(|s| format!("({s}.length | 0)")));
        let fold = terms.join(" + ");
        self.line(&format!("acc = (acc + {fold}) | 0;"));
        self.loop_depth -= 1;
        self.indent -= 1;
        self.line("}");
        self.line("acc");
        self.out
    }
}

const JIT_ENGINES: [Engine; 3] = [Engine::Tracing, Engine::Method, Engine::FastInterp];

fn run(engine: Engine, src: &str) -> Result<String, String> {
    let mut vm = Vm::new(engine);
    vm.step_budget = 30_000_000;
    match vm.eval(src) {
        Ok(v) => Ok(tracemonkey::runtime::ops::to_display(&mut vm.realm, v)),
        Err(e) => Err(format!("{e}")),
    }
}

/// Asserts every engine computes the interpreter's answer for `src`.
/// Reduced regression tests emitted by the failure reducer call this.
fn assert_engines_agree(src: &str) {
    let baseline = run(Engine::Interp, src);
    for engine in JIT_ENGINES {
        assert_eq!(baseline, run(engine, src), "{engine:?} disagrees on:\n{src}");
    }
}

/// The reducer predicate: does any engine still disagree with the
/// interpreter on `src`? A panic (e.g. a verifier or recorder assertion)
/// counts as a reproduction.
fn engines_disagree(src: &str) -> bool {
    let src = src.to_owned();
    std::panic::catch_unwind(move || {
        let baseline = run(Engine::Interp, &src);
        JIT_ENGINES.iter().any(|&e| run(e, &src) != baseline)
    })
    .unwrap_or(true)
}

/// Shrinks a failing program with the `tm-verifier` delta-debugging
/// reducer and panics with the minimized source and a ready-to-paste
/// regression test.
fn reduce_and_report(seed: u64, engine: Engine, src: &str) -> ! {
    // The reducer re-runs the engines hundreds of times and most probes
    // are expected to panic; silence the per-probe backtraces.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (small, stats) = tm_verifier::reduce_program(src, engines_disagree);
    std::panic::set_hook(prev_hook);
    let test = tm_verifier::as_regression_test(&format!("regress_fuzz_seed_{seed}"), &small);
    panic!(
        "seed {seed}: {engine:?} disagrees with the interpreter.\n\
         reduced {} lines to {} in {} probes; minimized program:\n{small}\n\
         suggested regression test:\n{test}",
        stats.lines_in, stats.lines_out, stats.probes
    );
}

fn fuzz_one(seed: u64) {
    let src = Gen::new(seed).program();
    let baseline = run(Engine::Interp, &src);
    for engine in JIT_ENGINES {
        let got = run(engine, &src);
        if got != baseline {
            reduce_and_report(seed, engine, &src);
        }
    }
}

fn fuzz_range(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        fuzz_one(seed);
    }
}

#[test]
fn fuzz_seeds_0_to_100() {
    fuzz_range(0..100);
}

#[test]
fn fuzz_seeds_100_to_200() {
    fuzz_range(100..200);
}

#[test]
fn fuzz_seeds_200_to_300() {
    fuzz_range(200..300);
}

/// Extended sweep, enabled with `TM_FUZZ_RANGE=start..end` (not run by
/// default; used for deeper soak testing).
#[test]
fn fuzz_extended_sweep() {
    let Ok(range) = std::env::var("TM_FUZZ_RANGE") else { return };
    let (a, b) = range.split_once("..").expect("start..end");
    fuzz_range(a.parse().expect("start")..b.parse().expect("end"));
}

/// Replays specific seeds: `TM_FUZZ_SEEDS=3,17,250` (comma-separated).
/// Used to re-check a seed a previous run flagged without sweeping its
/// whole range.
#[test]
fn fuzz_replay_seeds() {
    let Ok(list) = std::env::var("TM_FUZZ_SEEDS") else { return };
    for part in list.split(',').filter(|p| !p.trim().is_empty()) {
        fuzz_one(part.trim().parse().expect("TM_FUZZ_SEEDS: comma-separated integer seeds"));
    }
}

/// Runs `src` under the tracing JIT with the native x86-64 tier forced
/// on or off (off = the decoded dispatch-loop executor, the portable
/// reference). Returns the displayed result plus the monitor's
/// `(native_exits, native_fallbacks, trace_enters)` counters.
/// `background` additionally attaches a two-worker compiler pool and
/// turns on `background_compile`, so trace compilation *and* native
/// emission run off the request thread (the `TM_FUZZ_BG=1` mode).
fn run_tracing_native(
    src: &str,
    native: bool,
    background: bool,
) -> (Result<String, String>, (u64, u64, u64)) {
    let mut opts = tracemonkey::JitOptions::default();
    opts.native_backend = native;
    opts.background_compile = background;
    opts.profile = true;
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    if background {
        vm.attach_pool(std::sync::Arc::new(tracemonkey::CompilerPool::new(2)));
    }
    vm.step_budget = 30_000_000;
    let r = match vm.eval(src) {
        Ok(v) => Ok(tracemonkey::runtime::ops::to_display(&mut vm.realm, v)),
        Err(e) => Err(format!("{e}")),
    };
    let s = vm.profile().expect("tracing engine profiles");
    (r, (s.native_exits, s.native_fallbacks, s.trace_enters))
}

/// Native-tier differential mode: `TM_FUZZ_NATIVE=1` runs every seed's
/// program three ways — native x86-64 tier, decoded executor, and the
/// reference interpreter — and requires all three results to match
/// byte-for-byte. Also checks the accounting invariant that with the
/// native backend requested, every trace entry is counted as exactly one
/// native exit or one fallback. Trivially passes (with a note) where the
/// backend doesn't exist, so `ci.sh` can invoke it unconditionally.
/// Seeds come from `TM_FUZZ_SEEDS` when set, else a built-in smoke set.
#[test]
fn fuzz_native_tier() {
    if std::env::var("TM_FUZZ_NATIVE").as_deref() != Ok("1") {
        return;
    }
    if !tracemonkey::nanojit::native_supported() {
        eprintln!("native backend unavailable on this target; nothing to compare");
        return;
    }
    let seeds: Vec<u64> = match std::env::var("TM_FUZZ_SEEDS") {
        Ok(list) => list
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| p.trim().parse().expect("TM_FUZZ_SEEDS: integer seeds"))
            .collect(),
        Err(_) => (0..40).collect(),
    };
    let mut total_native_exits = 0;
    for seed in seeds {
        let src = Gen::new(seed).program();
        let baseline = run(Engine::Interp, &src);
        let background = std::env::var("TM_FUZZ_BG").as_deref() == Ok("1");
        let (decoded, _) = run_tracing_native(&src, false, false);
        let (native, (exits, fallbacks, enters)) = run_tracing_native(&src, true, background);
        assert_eq!(
            decoded, baseline,
            "seed {seed}: decoded executor disagrees with the interpreter:\n{src}"
        );
        assert_eq!(
            native, baseline,
            "seed {seed}: native tier disagrees with the interpreter:\n{src}"
        );
        assert_eq!(
            exits + fallbacks,
            enters,
            "seed {seed}: every trace entry must be a native exit or a fallback"
        );
        total_native_exits += exits;
    }
    assert!(total_native_exits > 0, "the sweep must actually exercise the native tier");
}

/// Multi-realm fuzzing: `TM_FUZZ_THREADS=K` runs each seeded program on
/// K concurrent realms sharing one code cache and background compiler
/// pool, and requires every realm, every repetition, to agree with the
/// single-threaded interpreter. Seeds come from `TM_FUZZ_SEEDS` when
/// set, else a built-in smoke set. See `docs/TESTING.md`.
#[test]
fn fuzz_multi_realm() {
    let Ok(k) = std::env::var("TM_FUZZ_THREADS") else { return };
    let k: usize = k.parse().expect("TM_FUZZ_THREADS: a thread count");
    let seeds: Vec<u64> = match std::env::var("TM_FUZZ_SEEDS") {
        Ok(list) => list
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| p.trim().parse().expect("TM_FUZZ_SEEDS: integer seeds"))
            .collect(),
        Err(_) => (0..8).collect(),
    };
    for seed in seeds {
        let src = Gen::new(seed).program();
        let baseline = run(Engine::Interp, &src);
        let mt = tracemonkey::MultiTenantVm::new(2);
        // Match the baseline's step budget: a budget-exhausting program
        // must exhaust it in every realm too, not run unbounded.
        let mut job = tracemonkey::RealmJob::repeat(&src, 2);
        job.step_budget = 30_000_000;
        let reports = mt.run(vec![job; k]);
        for (realm, rep) in reports.iter().enumerate() {
            for (i, got) in rep.results.iter().enumerate() {
                if *got != baseline {
                    panic!(
                        "seed {seed}: realm {realm} rep {i} diverged under \
                         {k}-realm sharing.\ninterp: {baseline:?}\nrealm:  {got:?}\n{src}"
                    );
                }
            }
        }
    }
}

/// Committed output of the failure reducer: an injected divergence
/// signature (the 31-bit boxing-boundary constant) in the generator's
/// seed-0 program was shrunk by `tm_verifier::reduce_program` from 39
/// lines to the 8 below (see `reducer_shrinks_generated_program`). Kept
/// as a permanent engine-agreement check: a dead branch reading an
/// undeclared array around the boundary constant.
#[test]
fn regress_reduced_overflow_boundary() {
    let src = "\
        if (0) {\n\
            if ((1073741823)) {\n\
                var v0 = arr0[0] | 0;\n\
            } else {\n\
                var v0 = arr0[9] | 0;\n\
            }\n\
        } else {\n\
        }\n\
    ";
    assert_engines_agree(src);
}

/// Found by this fuzzer (seed 30) and reduced by the failure reducer:
/// branch traces recorded from a side exit inside inlined recursion
/// rebuilt their shadow frames with the caller-resume pcs rotated by one
/// (`FrameDesc::resume_pc` describes the frame itself; the shadow frame's
/// `caller_resume` belongs to the frame below). With recursion every
/// frame shares one function, so nothing caught the rotation until the
/// interpreter resumed at a pc whose stack shape differed — an operand
/// stack underflow several exits later.
#[test]
fn regress_recursive_branch_resume_pcs() {
    let src = "\
        function rec1(n, a) {\n\
            if (n < 1) { return a | 0; }\n\
            return rec1(n - 1, (a + n) | 0) | 0;\n\
        }\n\
        var acc = 0;\n\
        for (var i = 0; i < 24; i++) {\n\
            acc = (acc + rec1(i & 15, 0)) | 0;\n\
        }\n\
        acc";
    assert_engines_agree(src);
}

/// The reducer pipeline end to end on a real generated program: treat
/// "still contains the boxing-boundary constant and still runs" as the
/// failure signature, shrink the first generated program that carries it,
/// and require the result to be a tiny, still-failing repro.
#[test]
fn reducer_shrinks_generated_program() {
    let (seed, src) = (0..200u64)
        .map(|s| (s, Gen::new(s).program()))
        .find(|(_, p)| p.contains("1073741823"))
        .expect("some seed must hit the boundary constant");
    let fails = |s: &str| s.contains("1073741823") && run(Engine::Interp, s).is_ok();
    let (small, stats) = tm_verifier::reduce_program(&src, fails);
    assert!(fails(&small), "reduction must preserve the failure signature");
    assert!(
        stats.lines_out <= 15,
        "seed {seed}: reducer left {} lines (want <= 15):\n{small}",
        stats.lines_out
    );
    assert!(stats.lines_out < stats.lines_in, "must actually shrink");
    println!("seed {seed}: reduced {} -> {} lines:\n{small}", stats.lines_in, stats.lines_out);
}
