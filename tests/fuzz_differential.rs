//! A JSFUNFUZZ-style fuzzer (§6.6): generates random loop-heavy programs
//! and differentially tests every engine against the interpreter. "We
//! modified JSFUNFUZZ to generate loops, and also to test more heavily
//! certain constructs we suspected would reveal flaws" — here: nested
//! loops, type-unstable variables, integer overflow boundaries, arrays,
//! and branchy control flow.

use tm_support::TmRng;
use tracemonkey::{Engine, Vm};

struct Gen {
    rng: TmRng,
    vars: Vec<String>,
    arrays: Vec<String>,
    loop_depth: u32,
    next_id: u32,
    out: String,
    indent: usize,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: TmRng::seed_from_u64(seed),
            vars: Vec::new(),
            arrays: Vec::new(),
            loop_depth: 0,
            next_id: 0,
            out: String::new(),
            indent: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// A random arithmetic expression over existing variables.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return match self.rng.gen_range(0..6) {
                0 => format!("{}", self.rng.gen_range(-100..100)),
                1 => format!("{}", self.rng.gen_range(-3.0..3.0)),
                // Values near the 31-bit boxing boundary stress the
                // overflow guards.
                2 => format!("{}", 1_073_741_823i64 - i64::from(self.rng.gen_range(0..3))),
                _ => {
                    if self.vars.is_empty() {
                        "1".to_owned()
                    } else {
                        let i = self.rng.gen_range(0..self.vars.len());
                        self.vars[i].clone()
                    }
                }
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        let op = ["+", "-", "*", "&", "|", "^", "%", ">>", "<<", ">>>"]
            [self.rng.gen_range(0..10usize)];
        if op == "%" {
            // Avoid NaN spam (but keep some).
            format!("(({a}) % ((({b}) & 7) + 2))")
        } else {
            format!("(({a}) {op} ({b}))")
        }
    }

    fn condition(&mut self) -> String {
        let a = self.expr(1);
        let b = self.expr(1);
        let op = ["<", "<=", ">", ">=", "==", "!=", "===", "!=="][self.rng.gen_range(0..8usize)];
        format!("({a}) {op} ({b})")
    }

    fn statement(&mut self, budget: &mut u32) {
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        match self.rng.gen_range(0..10) {
            0 | 1 => {
                // New variable.
                let v = self.fresh("v");
                let e = self.expr(2);
                self.line(&format!("var {v} = {e};"));
                self.vars.push(v);
            }
            2 | 3 => {
                // Assignment / compound assignment.
                if let Some(i) = self.pick_var() {
                    let v = self.vars[i].clone();
                    let e = self.expr(2);
                    let op = ["=", "+=", "-=", "*=", "&=", "^=", "|="]
                        [self.rng.gen_range(0..7usize)];
                    self.line(&format!("{v} {op} {e};"));
                }
            }
            4 => {
                // Array write (creates the array on first use).
                let a = if self.arrays.is_empty() || self.rng.gen_bool(0.3) {
                    let a = self.fresh("arr");
                    self.line(&format!("var {a} = [];"));
                    self.arrays.push(a.clone());
                    a
                } else {
                    let i = self.rng.gen_range(0..self.arrays.len());
                    self.arrays[i].clone()
                };
                let idx = self.rng.gen_range(0..16);
                let e = self.expr(2);
                self.line(&format!("{a}[{idx}] = {e};"));
            }
            5 => {
                // Array read into a var.
                if !self.arrays.is_empty() {
                    let ai = self.rng.gen_range(0..self.arrays.len());
                    let a = self.arrays[ai].clone();
                    let v = self.fresh("v");
                    let idx = self.rng.gen_range(0..20);
                    self.line(&format!("var {v} = {a}[{idx}] | 0;"));
                    self.vars.push(v);
                }
            }
            6 | 7 => {
                // If / else.
                let c = self.condition();
                self.line(&format!("if ({c}) {{"));
                self.indent += 1;
                self.statement(budget);
                self.indent -= 1;
                if self.rng.gen_bool(0.5) {
                    self.line("} else {");
                    self.indent += 1;
                    self.statement(budget);
                    self.indent -= 1;
                }
                self.line("}");
            }
            _ => {
                // Loop (bounded, nesting-limited).
                if self.loop_depth < 3 {
                    let i = self.fresh("i");
                    let n = self.rng.gen_range(3..60);
                    self.line(&format!("for (var {i} = 0; {i} < {n}; {i}++) {{"));
                    self.vars.push(i);
                    self.indent += 1;
                    self.loop_depth += 1;
                    let mut inner = self.rng.gen_range(1..4u32).min(*budget);
                    while inner > 0 {
                        self.statement(budget);
                        inner -= 1;
                    }
                    self.loop_depth -= 1;
                    self.indent -= 1;
                    self.line("}");
                    self.vars.pop();
                }
            }
        }
    }

    fn pick_var(&mut self) -> Option<usize> {
        if self.vars.is_empty() {
            None
        } else {
            Some(self.rng.gen_range(0..self.vars.len()))
        }
    }

    fn program(mut self) -> String {
        // Seed variables of mixed types (type-instability fodder).
        self.line("var acc = 0;");
        self.vars.push("acc".into());
        self.line("var dbl = 0.5;");
        self.vars.push("dbl".into());
        // A hot outer loop so tracing definitely kicks in.
        let outer = self.rng.gen_range(20..120);
        self.line(&format!("for (var main = 0; main < {outer}; main++) {{"));
        self.vars.push("main".into());
        self.indent += 1;
        self.loop_depth += 1;
        let mut budget = self.rng.gen_range(4..14u32);
        while budget > 0 {
            self.statement(&mut budget);
        }
        // Fold locals into the accumulator so everything is observable.
        let fold = self
            .vars
            .clone()
            .iter()
            .map(|v| format!("({v} | 0)"))
            .collect::<Vec<_>>()
            .join(" + ");
        self.line(&format!("acc = (acc + {fold}) | 0;"));
        self.loop_depth -= 1;
        self.indent -= 1;
        self.line("}");
        self.line("acc");
        self.out
    }
}

fn run(engine: Engine, src: &str) -> Result<String, String> {
    let mut vm = Vm::new(engine);
    vm.step_budget = 30_000_000;
    match vm.eval(src) {
        Ok(v) => Ok(tracemonkey::runtime::ops::to_display(&mut vm.realm, v)),
        Err(e) => Err(format!("{e}")),
    }
}

fn fuzz_range(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let src = Gen::new(seed).program();
        let baseline = run(Engine::Interp, &src);
        for engine in [Engine::Tracing, Engine::Method, Engine::FastInterp] {
            let got = run(engine, &src);
            assert_eq!(
                baseline, got,
                "seed {seed}: {engine:?} disagrees with the interpreter on:\n{src}"
            );
        }
    }
}

#[test]
fn fuzz_seeds_0_to_100() {
    fuzz_range(0..100);
}

#[test]
fn fuzz_seeds_100_to_200() {
    fuzz_range(100..200);
}

#[test]
fn fuzz_seeds_200_to_300() {
    fuzz_range(200..300);
}

/// Extended sweep, enabled with `TM_FUZZ_RANGE=start..end` (not run by
/// default; used for deeper soak testing).
#[test]
fn fuzz_extended_sweep() {
    let Ok(range) = std::env::var("TM_FUZZ_RANGE") else { return };
    let (a, b) = range.split_once("..").expect("start..end");
    fuzz_range(a.parse().expect("start")..b.parse().expect("end"));
}
