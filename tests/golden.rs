//! Golden-file tests for the human-readable renderings the engine
//! produces: the bytecode disassembly (`bytecode::disasm`), the LIR
//! trace printer (`lir::printer`), and the post-peephole fragment
//! listings (`Fragment::listing`, including the `; fuse:` raw→fused
//! header), pinned on fixed programs. Any change to compilation,
//! recording, or superinstruction fusion shows up as a readable diff
//! here.
//!
//! Regenerate with `TM_UPDATE_GOLDEN=1 cargo test --test golden`.

use std::path::PathBuf;

use tracemonkey::{Engine, JitOptions, Vm};

/// The pinned program: a nested loop with an inner accumulation, enough
/// to exercise function compilation, loop metadata, and a recorded trace
/// with guards and a loop edge.
const NESTED_LOOP_SRC: &str = "\
function inner(acc, i, j) {
    return (acc + i * j) | 0;
}
var total = 0;
for (var i = 0; i < 20; i = i + 1) {
    for (var j = 0; j < 10; j = j + 1) {
        total = inner(total, i, j);
    }
}
total";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("TM_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("golden file {} missing; regenerate with TM_UPDATE_GOLDEN=1", path.display())
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden file; if the change is intended, \
         regenerate with TM_UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The simplest hot loop: one induction variable, one accumulation —
/// the canonical demonstration of the fused loop tail.
const COUNTING_LOOP_SRC: &str = "var s = 0; for (var i = 0; i < 500; i = i + 1) s = s + i; s";

/// Runs `src` under tracing and renders every compiled fragment's
/// post-peephole listing (superinstructions included) in cache order.
fn fused_listings(src: &str) -> String {
    let mut vm = Vm::with_options(Engine::Tracing, JitOptions::default());
    vm.eval(src).expect("program runs");
    let m = vm.monitor().expect("tracing keeps its monitor");
    let mut out = String::new();
    for (t, tree) in m.cache.iter().enumerate() {
        for (f, frag) in tree.fragments.iter().enumerate() {
            out.push_str(&format!("=== tree {t} fragment {f} ===\n"));
            out.push_str(&frag.listing());
        }
    }
    out
}

#[test]
fn bytecode_disassembly_is_stable() {
    let mut realm = tracemonkey::Realm::new();
    let ast = tracemonkey::frontend::parse(NESTED_LOOP_SRC).expect("parses");
    let prog = tracemonkey::bytecode::compile(&ast, &mut realm).expect("compiles");
    let text = tracemonkey::bytecode::disasm::disassemble(&prog, &realm);
    // Sanity before pinning: both functions and their loops are present.
    assert!(text.contains("function inner"));
    assert!(text.contains("loops=2") || text.contains("loopheader"));
    check_golden("nested_loop.disasm.txt", &text);
}

#[test]
fn recorded_lir_is_stable() {
    let mut opts = JitOptions::default();
    opts.log_events = true;
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    vm.eval(NESTED_LOOP_SRC).expect("program runs");
    let m = vm.monitor().expect("tracing keeps its monitor");
    let tree = m.cache.iter().next().expect("the hot inner loop recorded a tree");
    let trace = tree.lir.first().expect("log_events retains the trunk LIR");
    let text = tracemonkey::lir::printer::print_trace(trace);
    // Sanity before pinning: a real trace with a guard and a loop edge.
    assert!(text.contains("import"));
    assert!(text.contains("loop"));
    check_golden("nested_loop.trunk.lir.txt", &text);
}

#[test]
fn counting_loop_fused_listing_is_stable() {
    let text = fused_listings(COUNTING_LOOP_SRC);
    // Sanity before pinning: fusion actually fired, and the fuse header
    // reports a strict reduction.
    assert!(text.contains("; fuse:"), "listing carries the fuse header");
    assert!(
        text.contains("CmpImmWrBranchI") || text.contains("CmpWrBranchI"),
        "the loop condition fused into a compare-write-branch:\n{text}"
    );
    assert!(text.contains("ChkAluImmWrLoopI"), "the loop tail fused:\n{text}");
    check_golden("counting_loop.fused.txt", &text);
}

#[test]
fn nested_loop_fused_listing_is_stable() {
    let text = fused_listings(NESTED_LOOP_SRC);
    assert!(text.contains("; fuse:"), "listing carries the fuse header");
    assert!(text.contains("CallTree") || text.contains("superinsts"));
    check_golden("nested_loop.fused.txt", &text);
}
