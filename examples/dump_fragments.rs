//! Disassembles every fragment the tracing JIT compiles for a program:
//! runs the source (argv[1], or a built-in counting loop) under tracing
//! and prints each fragment's post-peephole virtual-ISA listing,
//! including the `; fuse:` header with its raw→fused instruction counts.
//!
//! ```sh
//! cargo run --release --example dump_fragments -- 'var s=0; for (var i=0;i<500;i++) s+=i; s'
//! ```

use tracemonkey::{Engine, Vm};

fn main() {
    let src = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "var s = 0; for (var i = 0; i < 500; i++) s += i; s".to_owned());
    let mut vm = Vm::new(Engine::Tracing);
    vm.eval(&src).expect("program runs");
    let m = vm.monitor().expect("tracing engine has a monitor");
    for (t, tree) in m.cache.iter().enumerate() {
        for (f, frag) in tree.fragments.iter().enumerate() {
            println!("=== tree {t} fragment {f} ===");
            println!("{}", frag.listing());
        }
    }
}
