//! Disassembles compiled fragments — either live, by running a program
//! under tracing, or offline, from a persistent trace-cache file.
//!
//! With JTS source as argv[1] (or no argument), runs it and prints each
//! compiled fragment's post-peephole virtual-ISA listing, including the
//! `; fuse:` header with its raw→fused instruction counts:
//!
//! ```sh
//! cargo run --release --example dump_fragments -- 'var s=0; for (var i=0;i<500;i++) s+=i; s'
//! ```
//!
//! If argv[1] names an existing file, it is decoded as a trace-cache
//! file instead (no program or realm needed) and dumped section by
//! section against the layout of docs/PERSISTENCE.md — the mechanical
//! check that the spec and the codecs agree:
//!
//! ```sh
//! TM_CACHE=/tmp/sieve.tmc cargo run --release --example quickstart
//! cargo run --release --example dump_fragments -- /tmp/sieve.tmc
//! ```

use tracemonkey::jit::persist::read_cache_file;
use tracemonkey::{Engine, Vm};

fn main() {
    let arg = std::env::args().nth(1);
    if let Some(path) = arg.as_deref().filter(|a| std::path::Path::new(a).is_file()) {
        dump_cache(std::path::Path::new(path));
        return;
    }
    let src =
        arg.unwrap_or_else(|| "var s = 0; for (var i = 0; i < 500; i++) s += i; s".to_owned());
    let mut vm = Vm::new(Engine::Tracing);
    vm.eval(&src).expect("program runs");
    let m = vm.monitor().expect("tracing engine has a monitor");
    for (t, tree) in m.cache.iter().enumerate() {
        for (f, frag) in tree.fragments.iter().enumerate() {
            println!("=== tree {t} fragment {f} ===");
            println!("{}", frag.listing());
        }
    }
}

/// Offline cache-file dump: container → entries → per-entry sections in
/// the order docs/PERSISTENCE.md §4 specifies them. Decoding validates
/// magic, version, and every checksum; nothing here needs (or touches)
/// a VM.
fn dump_cache(path: &std::path::Path) {
    let entries = match read_cache_file(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{}: {e:?}", path.display());
            std::process::exit(1);
        }
    };
    println!("cache file {} — {} entr{}", path.display(), entries.len(),
        if entries.len() == 1 { "y" } else { "ies" });
    for e in &entries {
        println!("\n== entry program_key={:#018x} fingerprint={:#018x} ==", e.program_key, e.fingerprint);
        println!("shapes ({}):", e.shapes.len());
        for s in &e.shapes {
            println!("  id {:<4} path {:?}", s.id, s.path);
        }
        println!(
            "oracle: {} vars {:?}, {} sites {:?}",
            e.oracle_vars.len(),
            e.oracle_vars,
            e.oracle_sites.len(),
            e.oracle_sites
        );
        println!("blacklist ({}): {:?}", e.blacklist.len(), e.blacklist);
        println!("silenced anchors ({}): {:?}", e.silenced.len(), e.silenced);
        // Decoded trees carry a placeholder id (TreeCache::insert assigns
        // the real one); file order IS TreeId order, so index by position.
        for (t, tree) in e.trees.iter().enumerate() {
            println!("\n-- tree {t} anchor {:?} --", tree.anchor);
            let layout: Vec<_> = (0..tree.layout.len()).map(|i| tree.layout.key(i as u16)).collect();
            println!("layout ({} AR slots): {layout:?}", layout.len());
            println!("entry map:");
            for s in &tree.entry {
                println!("  ar {:<3} {:?} : {:?}", s.ar, s.key, s.ty);
            }
            if !tree.loop_writes.is_empty() {
                println!("loop writes: {:?}", tree.loop_writes);
            }
            for site in &tree.nested_sites {
                println!(
                    "nested call: inner tree {:?} expected_exit {:?} callsite_exit {} reimports {:?}",
                    site.inner, site.expected_exit, site.callsite_exit, site.reimports
                );
            }
            if tree.unstable {
                println!("unstable: trunk ends in an always-taken exit (§3.2)");
            }
            if tree.disabled {
                println!("disabled: never entered (§3.3 short-loop mitigation)");
            }
            for (f, frag) in tree.fragments.iter().enumerate() {
                println!(
                    "\n--- fragment {f} ({} bytecodes/iteration) ---",
                    tree.fragment_bytecodes[f]
                );
                if !tree.frag_entry_reqs[f].is_empty() {
                    println!("entry reqs: {:?}", tree.frag_entry_reqs[f]);
                }
                for (x, info) in tree.exits[f].iter().enumerate() {
                    let st = &tree.exit_states[f][x];
                    println!(
                        "exit {x}: {:?}, {} frames, {} write-backs, failures {}, branch {:?}",
                        info.kind,
                        info.frames.len(),
                        info.write_back.len(),
                        st.failures,
                        st.branch
                    );
                }
                println!("{}", frag.listing());
            }
        }
    }
}
