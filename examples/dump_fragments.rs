//! Disassembles compiled fragments — either live, by running a program
//! under tracing, or offline, from a persistent trace-cache file.
//!
//! With JTS source as argv[1] (or no argument), runs it and prints each
//! compiled fragment's post-peephole virtual-ISA listing, including the
//! `; fuse:` header with its raw→fused instruction counts:
//!
//! ```sh
//! cargo run --release --example dump_fragments -- 'var s=0; for (var i=0;i<500;i++) s+=i; s'
//! ```
//!
//! If argv[1] names an existing file, it is decoded as a trace-cache
//! file instead (no program or realm needed) and dumped section by
//! section against the layout of docs/PERSISTENCE.md — the mechanical
//! check that the spec and the codecs agree:
//!
//! ```sh
//! TM_CACHE=/tmp/sieve.tmc cargo run --release --example quickstart
//! cargo run --release --example dump_fragments -- /tmp/sieve.tmc
//! ```
//!
//! With `--native` (x86-64 Linux only), each tree is additionally run
//! through the native backend (`tm-nanojit::x64`) and its machine code
//! hexdumped, interleaved with the virtual instructions it implements
//! and the exit trampolines (`exit site: ... -> return` materializes the
//! exit index for the monitor; `-> jmp fragment N` is a stitched exit
//! baked in as a direct jump). `CallHelper` sites carry a
//! `; helper table[i] = <name>` line resolving the per-tree helper-table
//! index to the helper it dispatches (e.g. `ConcatStrings`, or
//! `CallNative(id)` for registered builtins). Works in the offline
//! `.tmc` mode too — the emitter only needs the fragments, not a VM.

use tracemonkey::jit::persist::read_cache_file;
use tracemonkey::nanojit::{emit_tree_annotated, native_supported, Fragment};
use tracemonkey::{Engine, Vm};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let native = if let Some(i) = args.iter().position(|a| a == "--native") {
        args.remove(i);
        if !native_supported() {
            eprintln!("--native: no backend for this target (needs x86-64 linux)");
            std::process::exit(1);
        }
        true
    } else {
        false
    };
    let arg = args.into_iter().next();
    if let Some(path) = arg.as_deref().filter(|a| std::path::Path::new(a).is_file()) {
        dump_cache(std::path::Path::new(path), native);
        return;
    }
    let src =
        arg.unwrap_or_else(|| "var s = 0; for (var i = 0; i < 500; i++) s += i; s".to_owned());
    let mut vm = Vm::new(Engine::Tracing);
    vm.eval(&src).expect("program runs");
    let m = vm.monitor().expect("tracing engine has a monitor");
    for (t, tree) in m.cache.iter().enumerate() {
        for (f, frag) in tree.fragments.iter().enumerate() {
            println!("=== tree {t} fragment {f} ===");
            println!("{}", frag.listing());
        }
        if native {
            dump_native(t, &tree.fragments);
        }
    }
}

/// Emits tree `t`'s fragments through the native backend and prints the
/// annotated hexdump (one buffer per tree: trunk, branches, then the
/// shared exit trampolines).
fn dump_native(t: usize, fragments: &[Fragment]) {
    match emit_tree_annotated(fragments) {
        Ok(nt) => {
            println!(
                "=== tree {t} native code ({} bytes, {} fragments) ===",
                nt.code_size(),
                nt.num_fragments()
            );
            print!("{}", nt.hexdump());
        }
        Err(e) => println!("=== tree {t} native code: not emitted ({e}) ==="),
    }
}

/// Offline cache-file dump: container → entries → per-entry sections in
/// the order docs/PERSISTENCE.md §4 specifies them. Decoding validates
/// magic, version, and every checksum; nothing here needs (or touches)
/// a VM.
fn dump_cache(path: &std::path::Path, native: bool) {
    let entries = match read_cache_file(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{}: {e:?}", path.display());
            std::process::exit(1);
        }
    };
    println!("cache file {} — {} entr{}", path.display(), entries.len(),
        if entries.len() == 1 { "y" } else { "ies" });
    for e in &entries {
        println!("\n== entry program_key={:#018x} fingerprint={:#018x} ==", e.program_key, e.fingerprint);
        println!("shapes ({}):", e.shapes.len());
        for s in &e.shapes {
            println!("  id {:<4} path {:?}", s.id, s.path);
        }
        println!(
            "oracle: {} vars {:?}, {} sites {:?}",
            e.oracle_vars.len(),
            e.oracle_vars,
            e.oracle_sites.len(),
            e.oracle_sites
        );
        println!("blacklist ({}): {:?}", e.blacklist.len(), e.blacklist);
        println!("silenced anchors ({}): {:?}", e.silenced.len(), e.silenced);
        // Decoded trees carry a placeholder id (TreeCache::insert assigns
        // the real one); file order IS TreeId order, so index by position.
        for (t, tree) in e.trees.iter().enumerate() {
            println!("\n-- tree {t} anchor {:?} --", tree.anchor);
            let layout: Vec<_> = (0..tree.layout.len()).map(|i| tree.layout.key(i as u16)).collect();
            println!("layout ({} AR slots): {layout:?}", layout.len());
            println!("entry map:");
            for s in &tree.entry {
                println!("  ar {:<3} {:?} : {:?}", s.ar, s.key, s.ty);
            }
            if !tree.loop_writes.is_empty() {
                println!("loop writes: {:?}", tree.loop_writes);
            }
            for site in &tree.nested_sites {
                println!(
                    "nested call: inner tree {:?} expected_exit {:?} callsite_exit {} reimports {:?}",
                    site.inner, site.expected_exit, site.callsite_exit, site.reimports
                );
            }
            if tree.unstable {
                println!("unstable: trunk ends in an always-taken exit (§3.2)");
            }
            if tree.disabled {
                println!("disabled: never entered (§3.3 short-loop mitigation)");
            }
            for (f, frag) in tree.fragments.iter().enumerate() {
                println!(
                    "\n--- fragment {f} ({} bytecodes/iteration) ---",
                    tree.fragment_bytecodes[f]
                );
                if !tree.frag_entry_reqs[f].is_empty() {
                    println!("entry reqs: {:?}", tree.frag_entry_reqs[f]);
                }
                for (x, info) in tree.exits[f].iter().enumerate() {
                    let st = &tree.exit_states[f][x];
                    println!(
                        "exit {x}: {:?}, {} frames, {} write-backs, failures {}, branch {:?}",
                        info.kind,
                        info.frames.len(),
                        info.write_back.len(),
                        st.failures,
                        st.branch
                    );
                }
                println!("{}", frag.listing());
            }
            if native {
                dump_native(t, &tree.fragments);
            }
        }
    }
}
