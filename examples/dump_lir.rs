//! Reproduces the paper's Figure 3/4: records the sieve's inner-loop store
//! line and prints both the LIR the recorder emits and the virtual-ISA
//! code the backend assembles.
//!
//! ```sh
//! cargo run --release --example dump_lir
//! ```

use tracemonkey::lir::{FilterOptions, Lir, LirBuffer, LirType};
use tracemonkey::nanojit::assemble;
use tracemonkey::runtime::Helper;

fn main() {
    // Hand-build the LIR for the paper's Figure 3 — line 5 of the sample
    // program: `primes[k] = false;` with `primes` and `k` imported from
    // the trace activation record, the array-class guard, and the call to
    // the runtime's array-set helper.
    let mut buf = LirBuffer::new(FilterOptions::default());
    let primes = buf.emit(Lir::Import { slot: 0, ty: LirType::Object }); // ld state[748]
    let k = buf.emit(Lir::Import { slot: 1, ty: LirType::Int }); // ld state[764]
    buf.emit(Lir::WriteAr { slot: 2, v: primes }); // st sp[0], primes
    buf.emit(Lir::WriteAr { slot: 3, v: k }); // st sp[8], k
    let fals = buf.emit(Lir::ConstBoxed(tracemonkey::Value::FALSE.raw()));
    buf.emit(Lir::WriteAr { slot: 4, v: fals }); // st sp[16], false
    let e1 = buf.alloc_exit();
    // guard: primes is an array (Figure 3 masks the class word).
    buf.emit(Lir::GuardClass { obj: primes, class: 1, exit: e1 });
    let e2 = buf.alloc_exit();
    // call js_Array_set(primes, k, false)
    let set = buf.emit(Lir::Call {
        helper: Helper::ArraySetElem,
        args: vec![primes, k, fals].into_boxed_slice(),
        ret: LirType::Int,
        exit: e2,
    });
    let zero = buf.emit(Lir::ConstI(0));
    let ok = buf.emit(Lir::EqI(set, zero));
    let e3 = buf.alloc_exit();
    buf.emit(Lir::GuardFalse(ok, e3)); // xt: side exit if js_Array_set failed
    let e4 = buf.alloc_exit();
    buf.emit(Lir::LoopBack(e4));

    let trace = buf.into_trace();
    println!("=== LIR (the paper's Figure 3 analogue) ===");
    println!("{}", tracemonkey::lir::print_trace(&trace));

    let fragment = assemble(&trace);
    println!("=== virtual-ISA code (the paper's Figure 4 analogue) ===");
    println!("{}", fragment.listing());
    println!(
        "{} machine instructions (the paper compares its 17 x86 instructions \
         with 100+ interpreted ones)",
        fragment.len()
    );
}
