//! Renders a tiny ASCII ray-traced scene with the guest language under the
//! tracing JIT — a domain-scenario example exercising constructors,
//! prototype property access, nested loops, and double math.
//!
//! ```sh
//! cargo run --release --example raytrace
//! ```

use tracemonkey::{Engine, Vm};

const SCENE: &str = "
function Sphere(cx, cy, cz, r) {
    this.cx = cx; this.cy = cy; this.cz = cz; this.r2 = r * r;
}
var spheres = [new Sphere(0, 0, 6, 2), new Sphere(2.5, 1.5, 8, 1.5), new Sphere(-2.5, -1, 7, 1)];
var shades = ' .:-=+*#%@';
var width = 78, height = 36;
var out = '';
for (var py = 0; py < height; py++) {
    var row = '';
    for (var px = 0; px < width; px++) {
        var dx = (px - width / 2) / width * 1.6;
        var dy = (py - height / 2) / height * 1.2;
        var dz = 1.0;
        var len = Math.sqrt(dx * dx + dy * dy + dz * dz);
        dx /= len; dy /= len; dz /= len;
        var best = 1e30;
        var hit = -1;
        for (var s = 0; s < 3; s++) {
            var sp = spheres[s];
            var b = -(sp.cx * dx + sp.cy * dy + sp.cz * dz);
            var c = sp.cx * sp.cx + sp.cy * sp.cy + sp.cz * sp.cz - sp.r2;
            var disc = b * b - c;
            if (disc > 0) {
                var t = -b - Math.sqrt(disc);
                if (t > 0 && t < best) { best = t; hit = s; }
            }
        }
        if (hit >= 0) {
            var sp = spheres[hit];
            var hx = dx * best - sp.cx, hy = dy * best - sp.cy, hz = dz * best - sp.cz;
            var nl = Math.sqrt(hx * hx + hy * hy + hz * hz);
            var light = (hx * -0.6 + hy * -0.6 + hz * -0.5) / nl;
            if (light < 0) light = 0;
            var idx = Math.floor(light * 9);
            row += shades.charAt(idx);
        } else {
            row += ' ';
        }
    }
    out += row + '\\n';
}
print(out);
spheres.length
";

fn main() {
    let mut vm = Vm::new(Engine::Tracing);
    vm.eval(SCENE).expect("render");
    println!("{}", vm.output());
    let m = vm.monitor().expect("tracing");
    println!("(rendered with {} compiled trace trees)", m.cache.len());
}
