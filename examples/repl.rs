//! A tiny REPL over the tracing VM. Globals persist between lines.
//!
//! ```sh
//! cargo run --release --example repl
//! ```

use std::io::{BufRead, Write};
use tracemonkey::{Engine, Vm};

fn main() {
    let mut vm = Vm::new(Engine::Tracing);
    let stdin = std::io::stdin();
    println!("tracemonkey repl — enter JTS statements; ctrl-d to exit");
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let before = vm.output().len();
        match vm.eval(&line) {
            Ok(v) => {
                let new_output = &vm.output()[before..];
                if !new_output.is_empty() {
                    print!("{new_output}");
                }
                let text = tracemonkey::runtime::ops::to_display(&mut vm.realm, v);
                println!("= {text}");
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
