//! Quickstart: run the paper's Figure 1 program (sieve of Eratosthenes)
//! under the tracing JIT and inspect what got compiled.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tracemonkey::{Engine, JitOptions, Vm};

fn main() -> Result<(), tracemonkey::VmError> {
    let source = "
        var primes = [];
        for (var i = 0; i < 10000; i++) primes[i] = true;
        for (var i = 2; i < 10000; ++i) {
            if (!primes[i]) continue;
            for (var k = i + i; k < 10000; k += i)
                primes[k] = false;
        }
        var count = 0;
        for (var i = 2; i < 10000; i++) if (primes[i]) count++;
        print('primes below 10000:', count);
        count
    ";

    let mut opts = JitOptions::default();
    opts.profile = true;
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    let value = vm.eval(source)?;
    println!("{}", vm.output().trim());
    println!("completion value: {:?}", vm.realm.heap.number_value(value));

    let monitor = vm.monitor().expect("tracing run");
    println!("\ncompiled {} trace trees:", monitor.cache.len());
    for tree in monitor.cache.iter() {
        println!(
            "  tree {:?} at {:?}: {} fragment(s), entered {} times, {} native iterations",
            tree.id,
            tree.anchor,
            tree.fragments.len(),
            tree.stats.enters,
            tree.stats.iterations
        );
    }
    let p = vm.profile().expect("profile");
    println!(
        "\nbytecodes: {} interpreted, {} recorded, {} native ({:.1}% on trace)",
        p.bytecodes_interp,
        p.bytecodes_recorded,
        p.bytecodes_native,
        100.0 * p.native_bytecode_fraction()
    );
    Ok(())
}
