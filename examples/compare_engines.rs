//! Runs one workload under all four engines and reports times — a
//! miniature of the paper's Figure 10 experiment.
//!
//! ```sh
//! cargo run --release --example compare_engines [iterations]
//! ```

use std::time::Instant;
use tracemonkey::{Engine, Vm};

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2_000_000);
    let source = format!(
        "var v = 4294967296; for (var i = 0; i < {n}; i++) v = v & i; v"
    );
    println!("bitops-bitwise-and kernel, {n} iterations:\n");
    let mut base = None;
    for (name, engine) in [
        ("interpreter (SpiderMonkey baseline)", Engine::Interp),
        ("fast interpreter (SFX stand-in)", Engine::FastInterp),
        ("method JIT (V8-2009 stand-in)", Engine::Method),
        ("tracing JIT (TraceMonkey)", Engine::Tracing),
    ] {
        let mut vm = Vm::new(engine);
        let start = Instant::now();
        let v = vm.eval(&source).expect("run");
        let t = start.elapsed();
        assert_eq!(vm.realm.heap.number_value(v), Some(0.0));
        let speedup = base.get_or_insert(t).as_secs_f64() / t.as_secs_f64();
        println!("  {name:38} {:8.1?}  ({speedup:.2}x)", t);
    }
}
